// Heterogeneous execution of the anti-diagonal pattern (Section III-A,
// Figure 3). Three phases:
//
//   Phase 1: the first t_switch fronts (low work) run entirely on the CPU.
//   Phase 2: each front is split — the CPU owns the top row-strip i <
//            t_share, the GPU the rest. One-way pipelined transfers: after
//            the CPU finishes its segment of front d it ships its boundary
//            cell (t_share-1, d-t_share+1) to the GPU on a copy stream;
//            the GPU's kernel for front d waits on the boundary cells of
//            fronts d-1 and d-2 ("GPU needs boundary cells from the last
//            two anti-diagonals") while the CPU streams ahead unblocked.
//   Phase 3: the last t_switch fronts run entirely on the CPU again, after
//            a bulk download of the GPU's part of the two preceding fronts.
#pragma once

#include "core/front_runner.h"
#include "core/strategies/common.h"
#include "core/strategies/heuristics.h"
#include "sim/launch_graph.h"

namespace lddp {

template <LddpProblem P>
Grid<typename P::Value> solve_hetero_antidiagonal(const P& p,
                                                  sim::Platform& platform,
                                                  const HeteroParams& user,
                                                  SolveStats* stats,
                                                  bool fused = true,
                                                  bool batch = true) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const AntiDiagonalLayout layout(n, m);
  const bool use_batch = detail::use_batch_front(p, layout, deps, batch);
  const cpu::WorkProfile work = detail::cpu_work_for(p, use_batch);
  const std::size_t num_fronts = layout.num_fronts();

  sim::Device& gpu = platform.gpu();
  const sim::KernelInfo info = detail::kernel_info_for(p, "hetero.ad");
  const HeteroParams params = detail::resolve_hetero_params(
      user, Pattern::kAntiDiagonal, n, m, platform.spec(), info,
      detail::kDiagonalCpuAmplification,
      static_cast<double>(input_bytes_of(p)), /*two_way=*/false, fused);
  const std::size_t ts = static_cast<std::size_t>(params.t_switch);
  const std::size_t s = static_cast<std::size_t>(params.t_share);
  const std::size_t phase2_begin = ts;
  const std::size_t phase2_end = num_fronts - ts;

  Grid<V> table(n, m);
  sim::DeviceBuffer<V> dtable = gpu.template alloc<V>(layout.size());
  detail::GridReader<V> hread{&table};
  detail::DeviceReader<V, AntiDiagonalLayout> dread{dtable.device_ptr(),
                                                    &layout};

  const auto compute_stream = gpu.default_stream();
  const auto h2d_stream = gpu.create_stream();
  const auto d2h_stream = gpu.create_stream();
  // Transfers are strictly CPU→GPU until phase 3, so the entire phase-2
  // pipeline (uploads + kernels) fuses into one graph submission; workers
  // stay resident in the strip barrier across all CPU fronts.
  sim::LaunchGraph graph(gpu, fused);
  cpu::StripSession strips(platform.pool());
  // Only the GPU strip's share of the problem input goes up (the CPU reads
  // its rows from host memory directly).
  graph.record_h2d(compute_stream,
                 static_cast<std::size_t>(
                     static_cast<double>(input_bytes_of(p)) *
                     static_cast<double>(n - std::min(s, n)) /
                     static_cast<double>(n)),
                 sim::MemoryKind::kPageable);

  // Number of CPU-owned cells (rows i < s) at the head of front d.
  auto cpu_len = [&](std::size_t d) -> std::size_t {
    const std::size_t lo = layout.i_min(d);
    if (lo >= s) return 0;
    return std::min(s - lo, layout.front_size(d));
  };

  auto haddr = [&table](std::size_t i, std::size_t j) {
    return &table.at(i, j);
  };
  auto run_cpu = [&](std::size_t d, std::size_t count, sim::OpId dep) {
    sim::Platform::CpuFrontOpts opts;
    opts.streamed = true;  // persistent framework threads, not fork/join
    opts.mem_amplification = detail::kDiagonalCpuAmplification;
    opts.parallel = cpu::parallel_beats_serial(
        platform.spec().cpu, work, count, opts.mem_amplification, true);
    opts.dep1 = dep;
    if (use_batch) {
      return platform.cpu_front(
          count, work,
          [&, d](std::size_t lo, std::size_t hi) {
            detail::run_front_range(p, deps, bound, layout, d, lo, hi, haddr,
                                    /*batch=*/true);
          },
          opts);
    }
    return platform.cpu_front(
        count, work,
        [&, d](std::size_t c) {
          const CellIndex cell = layout.cell(d, c);
          table.at(cell.i, cell.j) =
              detail::compute_cell(p, deps, bound, cell.i, cell.j, m, hread);
        },
        opts);
  };

  sim::OpId last_cpu = sim::kNoOp;
  sim::OpId last_gpu = sim::kNoOp;

  // ---- Phase 1 ----------------------------------------------------------
  for (std::size_t d = 0; d < phase2_begin; ++d)
    last_cpu = run_cpu(d, layout.front_size(d), sim::kNoOp);

  // Phase-2 entry: the GPU will read rows >= s-1 of the two fronts before
  // phase2_begin, which the CPU computed in phase 1. Ship them in bulk.
  sim::OpId h2d_m1 = sim::kNoOp;  // boundary transfer of front d-1
  sim::OpId h2d_m2 = sim::kNoOp;  // boundary transfer of front d-2
  if (phase2_begin < phase2_end && phase2_begin > 0) {
    const std::size_t lo_row = s == 0 ? 0 : s - 1;
    std::size_t bytes = 0;
    for (std::size_t back = 1; back <= 2 && back <= phase2_begin; ++back) {
      const std::size_t d = phase2_begin - back;
      const std::size_t base = layout.front_offset(d);
      for (std::size_t c = 0; c < layout.front_size(d); ++c) {
        const CellIndex cell = layout.cell(d, c);
        if (cell.i < lo_row) continue;
        dtable.device_ptr()[base + c] = table.at(cell.i, cell.j);
        bytes += sizeof(V);
      }
    }
    h2d_m1 = h2d_m2 = graph.record_h2d(h2d_stream, bytes,
                                       sim::MemoryKind::kPageable, last_cpu);
  }

  // ---- Phase 2 ----------------------------------------------------------
  for (std::size_t d = phase2_begin; d < phase2_end; ++d) {
    const std::size_t fs = layout.front_size(d);
    const std::size_t c = cpu_len(d);

    sim::OpId cpu_op = sim::kNoOp;
    if (c > 0) {
      // CPU reads only rows < s of fronts d-1/d-2 — all CPU-produced, so
      // the CPU resource's FIFO order already covers the dependency.
      cpu_op = run_cpu(d, c, sim::kNoOp);
      last_cpu = cpu_op;
    }

    // Pipelined one-way boundary transfer: the CPU's deepest row cell of
    // this front, needed by GPU fronts d+1 (as N) and d+2 (as NW).
    sim::OpId h2d_op = sim::kNoOp;
    if (c > 0 && s > 0 && s - 1 >= layout.i_min(d) &&
        s - 1 <= layout.i_max(d)) {
      const std::size_t j = d - (s - 1);
      dtable.device_ptr()[layout.flat(s - 1, j)] = table.at(s - 1, j);
      h2d_op = graph.record_h2d(h2d_stream, sizeof(V),
                                sim::MemoryKind::kPinned, cpu_op);
    }

    if (c < fs) {
      // The kernel additionally waits for the boundary cells of the last
      // two fronts (the W/N/NW reads that cross the strip).
      graph.stream_wait(compute_stream, h2d_m2);
      const std::size_t base = layout.front_offset(d);
      V* out = dtable.device_ptr();
      if (use_batch) {
        last_gpu = graph.launch(
            compute_stream, info, fs - c,
            [&, d, c, out](std::size_t lo, std::size_t hi) {
              detail::run_front_range(
                  p, deps, bound, layout, d, c + lo, c + hi,
                  [out, &layout](std::size_t i, std::size_t j) {
                    return out + layout.flat(i, j);
                  },
                  /*batch=*/true);
            },
            h2d_m1);
      } else {
        last_gpu = graph.launch(
            compute_stream, info, fs - c,
            [&, d, c, base, out](std::size_t k) {
              const CellIndex cell = layout.cell(d, c + k);
              out[base + c + k] = detail::compute_cell(p, deps, bound, cell.i,
                                                       cell.j, m, dread);
            },
            h2d_m1);
      }
    }
    h2d_m2 = h2d_m1;
    h2d_m1 = h2d_op;
  }

  // Phase 2 is over: submit the fused pipeline before anything on the host
  // side needs a GPU op id (the downloads below depend on last_gpu).
  graph.replay();
  last_gpu = graph.resolve(last_gpu);

  // Phase-3 entry: the CPU reads everything in the two fronts preceding
  // phase2_end; download the GPU-owned parts in bulk.
  sim::OpId entry_d2h = sim::kNoOp;
  if (phase2_end < num_fronts && phase2_end >= 1) {
    std::size_t bytes = 0;
    for (std::size_t back = 1; back <= 2 && back <= phase2_end; ++back) {
      const std::size_t d = phase2_end - back;
      if (d < phase2_begin) break;  // phase-1 front: already on the host
      const std::size_t base = layout.front_offset(d);
      for (std::size_t c = cpu_len(d); c < layout.front_size(d); ++c) {
        const CellIndex cell = layout.cell(d, c);
        table.at(cell.i, cell.j) = dtable.device_ptr()[base + c];
        bytes += sizeof(V);
      }
    }
    entry_d2h = gpu.record_d2h(d2h_stream, bytes, sim::MemoryKind::kPageable,
                               last_gpu);
  }

  // ---- Phase 3 ----------------------------------------------------------
  for (std::size_t d = phase2_end; d < num_fronts; ++d) {
    last_cpu = run_cpu(d, layout.front_size(d), entry_d2h);
    entry_d2h = sim::kNoOp;  // only the first phase-3 front waits on it
  }

  // Final download of the GPU-owned region (phase-2 suffixes).
  {
    std::size_t bytes = 0;
    for (std::size_t d = phase2_begin; d < phase2_end; ++d) {
      const std::size_t base = layout.front_offset(d);
      for (std::size_t c = cpu_len(d); c < layout.front_size(d); ++c) {
        const CellIndex cell = layout.cell(d, c);
        table.at(cell.i, cell.j) = dtable.device_ptr()[base + c];
        bytes += sizeof(V);
      }
    }
    const sim::OpId fin =
        gpu.record_d2h(d2h_stream, std::min(bytes, result_bytes_of(p)),
                       sim::MemoryKind::kPageable, last_gpu);
    platform.cpu_sync(fin, last_cpu);
  }

  if (stats) {
    stats->mode_used = Mode::kHeterogeneous;
    stats->pattern = Pattern::kAntiDiagonal;
    stats->transfer = transfer_need(deps);
    stats->fronts = num_fronts;
    stats->cells = n * m;
    stats->t_switch = params.t_switch;
    stats->t_share = params.t_share;
    detail::finish_stats(*stats, platform, wall.seconds());
  }
  return table;
}

}  // namespace lddp
