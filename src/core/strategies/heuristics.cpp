#include "core/strategies/heuristics.h"

#include <algorithm>

#include "cpu/cost_model.h"
#include "sim/tile_kernel.h"

namespace lddp::detail {

namespace {

double cpu_best_front_seconds(const cpu::CpuSpec& spec,
                              const cpu::WorkProfile& work,
                              std::size_t cells, double amp) {
  // Low-work fronts are small enough to be cache-resident for the serial
  // sweep, so the serial alternative is priced without amplification.
  return std::min(
      cpu::cpu_front_seconds(spec, work, cells, true, amp, /*streamed=*/true),
      cpu::cpu_front_seconds(spec, work, cells, false));
}

// Per-front submission cost: a full launch overhead when every operation is
// issued eagerly, but only the graph node-issue cost once the phase is
// recorded as a fused launch (the one-off full overhead per replay is
// amortized over all fronts and ignored here).
double submit_seconds(const sim::GpuSpec& spec, bool fused) {
  return (fused ? spec.graph_node_issue_us : spec.launch_overhead_us) * 1e-6;
}

double gpu_front_seconds(const sim::GpuSpec& spec,
                         const sim::KernelInfo& kernel, std::size_t cells,
                         bool fused) {
  const double boundary =
      fused ? submit_seconds(spec, fused) +
                  sim::transfer_exec_seconds(spec, sizeof(double),
                                             sim::MemoryKind::kPinned)
            : sim::transfer_seconds(spec, sizeof(double),
                                    sim::MemoryKind::kPinned);
  return submit_seconds(spec, fused) +
         sim::kernel_exec_seconds(spec, kernel, cells) + boundary;
}

}  // namespace

std::size_t gpu_crossover_front_cells(const sim::PlatformSpec& platform,
                                      const sim::KernelInfo& kernel,
                                      std::size_t max_front,
                                      double cpu_mem_amplification,
                                      bool fused) {
  if (max_front == 0) return 0;
  // The cost difference gpu - cpu is decreasing in the front size (the CPU
  // slope exceeds the GPU slope; the intercepts favour the CPU), so a
  // binary search finds the crossover.
  auto gpu_wins = [&](std::size_t f) {
    return gpu_front_seconds(platform.gpu, kernel, f, fused) <
           cpu_best_front_seconds(platform.cpu, kernel.work, f,
                                  cpu_mem_amplification);
  };
  if (gpu_wins(1)) return 1;
  if (!gpu_wins(max_front)) return max_front;
  std::size_t lo = 1, hi = max_front;  // gpu loses at lo, wins at hi
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    (gpu_wins(mid) ? hi : lo) = mid;
  }
  return hi;
}

long long balanced_t_share(const sim::PlatformSpec& platform,
                           const sim::KernelInfo& kernel,
                           std::size_t front_cells,
                           double cpu_mem_amplification,
                           double input_bytes_per_front,
                           double mapped_us_when_split, bool fused) {
  if (front_cells == 0) return 0;
  const double upload_rate = platform.gpu.pageable_bandwidth_gbs * 1e9;
  auto objective = [&](std::size_t s) {
    const double cpu =
        s == 0 ? 0.0
               : cpu::cpu_front_seconds(platform.cpu, kernel.work, s, true,
                                        cpu_mem_amplification,
                                        /*streamed=*/true);
    const std::size_t g = front_cells - s;
    double gpu = submit_seconds(platform.gpu, fused) +
                 sim::kernel_exec_seconds(platform.gpu, kernel, g);
    if (g > 0) {
      // Amortized share of the input upload that the GPU strip requires.
      gpu += input_bytes_per_front * static_cast<double>(g) /
             static_cast<double>(front_cells) / upload_rate;
      if (s > 0) gpu += mapped_us_when_split * 1e-6;
    }
    return std::max(cpu, gpu);
  };
  // The objective is piecewise monotone with a single valley; a coarse
  // scan over 128 candidates is ample for a heuristic the empirical tuner
  // refines anyway. Ties break toward the smaller CPU share.
  std::size_t best = 0;
  double best_t = objective(0);
  for (int k = 1; k <= 128; ++k) {
    const std::size_t s =
        front_cells * static_cast<std::size_t>(k) / 128;
    const double t = objective(s);
    if (t < best_t - 1e-15) {
      best_t = t;
      best = s;
    }
  }
  return static_cast<long long>(best);
}

HeteroParams resolve_hetero_params(HeteroParams user, Pattern canon,
                                   std::size_t rows, std::size_t cols,
                                   const sim::PlatformSpec& platform,
                                   const sim::KernelInfo& kernel,
                                   double cpu_mem_amplification,
                                   double input_bytes, bool two_way,
                                   bool fused) {
  HeteroParams out = user;
  const std::size_t max_front = std::min(rows, cols);

  if (out.t_switch < 0) {
    const std::size_t fc = gpu_crossover_front_cells(
        platform, kernel, max_front, cpu_mem_amplification, fused);
    switch (canon) {
      case Pattern::kAntiDiagonal:
        // Front d has d+1 cells while growing.
        out.t_switch = static_cast<long long>(fc);
        break;
      case Pattern::kKnightMove:
        // Front t has roughly t/2 cells while growing.
        out.t_switch = static_cast<long long>(2 * fc);
        break;
      case Pattern::kInvertedL: {
        // Shell k has rows + cols - 2k - 1 cells; the last shells whose
        // size falls below the crossover go to the CPU.
        const std::size_t total = rows + cols - 1;
        out.t_switch = fc >= total
                           ? static_cast<long long>(max_front)
                           : static_cast<long long>(
                                 std::min<std::size_t>(max_front, (fc + 1) / 2));
        break;
      }
      default:
        out.t_switch = 0;  // Horizontal/Vertical: constant parallelism.
        break;
    }
  }

  long long switch_max = 0, share_max = 0;
  hetero_param_ranges(canon, rows, cols, &switch_max, &share_max);

  if (out.t_share < 0) {
    std::size_t num_fronts = 0, typical_front = 0;
    switch (canon) {
      case Pattern::kAntiDiagonal:
        num_fronts = rows + cols - 1;
        typical_front = max_front;
        break;
      case Pattern::kKnightMove:
        num_fronts = 2 * (rows - 1) + cols;
        typical_front = max_front;
        break;
      case Pattern::kHorizontal:
        num_fronts = rows;
        typical_front = cols;
        break;
      case Pattern::kVertical:
        num_fronts = cols;
        typical_front = rows;
        break;
      case Pattern::kInvertedL:
      case Pattern::kMirroredInvertedL:
        num_fronts = max_front;
        typical_front = rows + cols - 1;
        break;
    }
    const double input_per_front =
        num_fronts > 0 ? input_bytes / static_cast<double>(num_fronts) : 0.0;
    const double mapped_us =
        two_way ? platform.gpu.mapped_access_overhead_us : 0.0;
    out.t_share = balanced_t_share(platform, kernel, typical_front,
                                   cpu_mem_amplification, input_per_front,
                                   mapped_us, fused);
    // Keep the default split genuinely heterogeneous: never hand the CPU
    // more than half of the strip even when the balance equation says the
    // GPU is not worth engaging (the tuner may still pick larger values).
    out.t_share = std::min(out.t_share, share_max / 2);
  }

  out.t_switch = std::clamp<long long>(out.t_switch, 0, switch_max);
  out.t_share = std::clamp<long long>(out.t_share, 0, share_max);
  return out;
}

namespace {

// halo_cells() of a full interior tile, without a TileScheduler walk.
std::size_t tile_halo_estimate(ContributingSet deps, std::size_t tile,
                               bool skewed) {
  std::size_t halo = 0;
  if (deps.has_n() || deps.has_nw() || deps.has_ne())
    halo += tile + 1 + (skewed ? 1 : 0);
  if (deps.has_w()) halo += tile;
  return halo;
}

double gpu_tiled_front_seconds_est(const sim::GpuSpec& spec,
                                   const sim::KernelInfo& kernel,
                                   std::size_t num_tiles, std::size_t tile,
                                   std::size_t value_bytes,
                                   ContributingSet deps, bool skewed,
                                   bool fused) {
  const std::size_t cells = num_tiles * tile * tile;
  const std::size_t staged = sim::tiled_staged_bytes(
      kernel, deps.count(), value_bytes, cells,
      num_tiles * tile_halo_estimate(deps, tile, skewed));
  return submit_seconds(spec, fused) +
         sim::tiled_kernel_exec_seconds(spec, kernel, num_tiles, tile, tile,
                                        cells, staged);
}

}  // namespace

TiledSplit resolve_tiled_split(const HeteroParams& user,
                               const TileScheduler& sched,
                               const sim::PlatformSpec& platform,
                               const sim::KernelInfo& kernel,
                               std::size_t value_bytes, double input_bytes,
                               bool fused) {
  TiledSplit out;
  const std::size_t T = sched.tile();
  const std::size_t F = sched.num_fronts();
  const std::size_t tr = sched.tile_rows();
  const std::size_t K = std::min(tr, sched.tile_cols());
  const std::size_t tile_cells = T * T;
  const bool skewed = sched.skewed();
  const ContributingSet deps = sched.deps();

  auto cpu_front = [&](std::size_t k) {
    return cpu::cpu_tiled_front_seconds(platform.cpu, kernel.work, k,
                                        tile_cells);
  };
  // A GPU tile front additionally pays the pinned bottom-row halo shipment
  // of the pipelined split.
  const double halo_copy =
      submit_seconds(platform.gpu, fused) +
      sim::transfer_exec_seconds(platform.gpu, T * value_bytes,
                                 sim::MemoryKind::kPinned);
  auto gpu_front = [&](std::size_t k) {
    return gpu_tiled_front_seconds_est(platform.gpu, kernel, k, T,
                                       value_bytes, deps, skewed, fused) +
           halo_copy;
  };

  if (user.t_switch >= 0) {
    out.t_switch_fronts = std::min<std::size_t>(
        F / 2, static_cast<std::size_t>(user.t_switch) / T);
  } else {
    // First tile-front index where the full-front GPU cost drops below the
    // tiled CPU cost (front g has min(g+1, K) tiles while growing).
    std::size_t ts = 0;
    while (ts < F / 2) {
      const std::size_t k = std::min(ts + 1, K);
      if (gpu_front(k) < cpu_front(k)) break;
      ++ts;
    }
    out.t_switch_fronts = ts;
  }

  if (user.t_share >= 0) {
    out.t_share_tiles = std::min<std::size_t>(
        tr, (static_cast<std::size_t>(user.t_share) + T / 2) / T);
  } else {
    // Balance the per-front critical path max(cpu strip, gpu rest) on a
    // typical (full) front of K tiles; the GPU side is charged its
    // amortized share of the input upload.
    const double upload_rate = platform.gpu.pageable_bandwidth_gbs * 1e9;
    const double input_per_front =
        F > 0 ? input_bytes / static_cast<double>(F) : 0.0;
    std::size_t best = 0;
    double best_t = 0.0;
    for (std::size_t s = 0; s <= K; ++s) {
      const double cpu = s == 0 ? 0.0 : cpu_front(s);
      const std::size_t g = K - s;
      double gpu = 0.0;
      if (g > 0)
        gpu = gpu_front(g) + input_per_front * static_cast<double>(g) /
                                 static_cast<double>(K) / upload_rate;
      const double t = std::max(cpu, gpu);
      if (s == 0 || t < best_t - 1e-15) {
        best_t = t;
        best = s;
      }
    }
    // Same convention as the untiled default: keep the split genuinely
    // heterogeneous — at most half the strip to the CPU.
    out.t_share_tiles = std::min(best, tr / 2);
  }

  out.t_switch_fronts = std::min(out.t_switch_fronts, F / 2);
  out.t_share_tiles = std::min(out.t_share_tiles, tr);
  return out;
}

std::size_t default_tile(const sim::PlatformSpec& platform,
                         const sim::KernelInfo& kernel, std::size_t rows,
                         std::size_t cols, std::size_t value_bytes,
                         ContributingSet deps, bool fused) {
  const bool skewed = deps.has_ne();
  const std::size_t vspan = cols + (skewed ? rows - 1 : 0);
  std::size_t best = 8;
  double best_t = 0.0;
  bool have = false;
  for (std::size_t tile : {8, 16, 32, 64, 128, 256}) {
    // Skip candidates larger than the whole table (keep at least one).
    if (have && tile > rows && tile > vspan) continue;
    const std::size_t tr = (rows + tile - 1) / tile;
    const std::size_t tc = (vspan + tile - 1) / tile;
    const std::size_t fronts = tr + tc - 1;
    double total = platform.gpu.launch_overhead_us * 1e-6;
    for (std::size_t g = 0; g < fronts; ++g) {
      const std::size_t k = std::min({g + 1, tr, tc, fronts - g});
      total += gpu_tiled_front_seconds_est(platform.gpu, kernel, k, tile,
                                           value_bytes, deps, skewed, fused);
    }
    if (!have || total < best_t) {
      have = true;
      best_t = total;
      best = tile;
    }
  }
  return best;
}

void hetero_param_ranges(Pattern canon, std::size_t rows, std::size_t cols,
                         long long* switch_max, long long* share_max) {
  // t_switch counts fronts from the low-work ends (both ends for the
  // patterns whose parallelism rises and falls); t_share is a strip width
  // (rows for anti-diagonal, columns otherwise).
  std::size_t num_fronts = 0;
  std::size_t strip_max = 0;
  switch (canon) {
    case Pattern::kAntiDiagonal:
      num_fronts = rows + cols - 1;
      strip_max = rows;
      break;
    case Pattern::kKnightMove:
      num_fronts = 2 * (rows - 1) + cols;
      strip_max = cols;
      break;
    case Pattern::kInvertedL:
    case Pattern::kMirroredInvertedL:
      num_fronts = std::min(rows, cols);
      strip_max = cols;
      break;
    case Pattern::kHorizontal:
      num_fronts = rows;
      strip_max = cols;
      break;
    case Pattern::kVertical:
      num_fronts = cols;
      strip_max = rows;
      break;
  }
  const bool two_ended =
      canon == Pattern::kAntiDiagonal || canon == Pattern::kKnightMove;
  *switch_max =
      static_cast<long long>(two_ended ? num_fronts / 2 : num_fronts);
  *share_max = static_cast<long long>(strip_max);
}

std::size_t default_checkpoint_interval(std::size_t rows) {
  std::size_t k = 1;
  while ((k + 1) * (k + 1) <= rows) ++k;  // floor(sqrt(rows)), exactly
  return std::clamp<std::size_t>(k, 4, 512);
}

}  // namespace lddp::detail
