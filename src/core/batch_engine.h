// Batched multi-solve throughput engine — many independent LDDP requests
// time-sharing one simulated heterogeneous platform.
//
// Every solve() call so far has owned the whole platform for its duration;
// a server-style workload ("millions of users") instead keeps a stream of
// independent requests in flight so one request's CPU phases overlap
// another's kernels and DMA (the generalization beyond one-CPU+one-GPU the
// paper's conclusion invites, and the hybrid-scheduler regime of Teodoro
// et al.). The BatchEngine provides that regime:
//
//  * submit() admits a request through a bounded queue (reject-or-wait
//    backpressure) and returns a future for its bit-exact SolveResult;
//  * worker threads execute admitted solves concurrently for real — each
//    in-flight solve gets its own ThreadPool (strip sessions never share a
//    master) and a per-solve quota view of the shared BufferPool arenas;
//  * each solve records its private simulated schedule (the exact op DAG a
//    solo run would produce), and wait() replays all of them onto one
//    shared sim::Platform under the configured scheduler policy — FIFO,
//    shortest-job-first on the cost model's makespan estimate, or
//    weighted-fair — with `concurrency` simulated in-flight slots.
//
// Because the replayed merge is a pure function of the recorded schedules
// and the admission order (sim/timeline_merge.h), the batch makespan,
// per-solve latencies and completion order are deterministic: independent
// of OS scheduling, worker count, and real-thread interleaving. Results
// are bit-identical to running each solve alone — only simulated timing
// and ordering change.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/chaos.h"
#include "core/framework.h"
#include "core/lane_cohort.h"
#include "core/run_config.h"
#include "core/tuner.h"
#include "cpu/thread_pool.h"
#include "sim/device_spec.h"
#include "sim/memory.h"
#include "sim/timeline.h"
#include "util/fault_injection.h"

namespace lddp {

/// Order in which queued solves are dispatched into simulated slots (and
/// picked up by the real worker threads).
enum class BatchSched {
  kFifo,  ///< submission order
  kSjf,   ///< smallest cost-model makespan estimate first
  kWfq,   ///< weighted fair: smallest estimate/weight first (one-request
          ///< flows, so the classic virtual finish tag reduces to this)
};

std::string to_string(BatchSched s);

/// What submit() does when the bounded queue is full.
enum class BatchAdmission {
  kWait,    ///< block until a slot frees (backpressure)
  kReject,  ///< return nullopt immediately (load shedding)
};

struct BatchConfig {
  /// The one simulated platform every request in the batch shares. A
  /// request's own RunConfig::platform is overridden with this — mixing
  /// hardware models inside one merged schedule would be meaningless.
  sim::PlatformSpec platform = sim::PlatformSpec::hetero_high();
  /// Simulated in-flight solve slots: how many admitted solves may share
  /// the platform at once. 1 reproduces the serial one-solve-at-a-time
  /// regime exactly.
  std::size_t concurrency = 4;
  /// Bound of the pending-request queue (admission control).
  std::size_t queue_capacity = 64;
  BatchAdmission admission = BatchAdmission::kWait;
  BatchSched sched = BatchSched::kFifo;
  /// Real executor threads. -1 picks min(concurrency, hardware threads);
  /// 0 runs every solve inline on the thread that calls wait() (or, under
  /// kWait backpressure, the blocked submit() caller) — fully
  /// deterministic real execution, used by the unit tests. The simulated
  /// report is identical either way.
  long long worker_threads = -1;
  /// Host threads per in-flight solve (each worker owns a private
  /// ThreadPool of this size, so strip sessions of concurrent solves never
  /// contend for a master). <= 1 runs each solve single-threaded.
  std::size_t threads_per_solve = 1;
  /// CPU execution substrate (effective when threads_per_solve > 1).
  /// kAuto resolves to kStealing: ONE engine-owned work-stealing executor
  /// serves every in-flight solve — per-solve worker counts become soft
  /// targets rather than hard thread partitions, the executor is sized to
  /// min(hardware, slots x threads_per_solve) so the host is never
  /// oversubscribed, and a finishing solve's workers immediately drain
  /// the morsels of the solves still running. kStatic restores the legacy
  /// substrate exactly: private per-slot pools, or the one cooperative
  /// pool under pack_solves. Results and merged simulated reports are
  /// bit-identical across substrates; only host wall-clock changes.
  cpu::Schedule schedule = cpu::Schedule::kAuto;
  /// Per-solve cap on bytes borrowed from the shared buffer-pool arenas
  /// (QuotaBufferPool); over-quota acquisitions fall through to the heap.
  /// 0 = unlimited.
  std::size_t buffer_quota_bytes = 0;
  /// Admission budget on the summed estimated table bytes of co-running
  /// solves (full tier: the whole grid; frontier tier: checkpoints + the
  /// rolling front rows). The scheduler defers requests that would push
  /// the in-flight total past the budget — a deferred request runs as
  /// soon as enough tables retire, and a request larger than the whole
  /// budget still runs (alone), so nothing starves. 0 = unlimited.
  std::size_t memory_budget_bytes = 0;
  /// Cross-solve wavefront packing (default on in batch mode): each
  /// simulated scheduling step, co-ready GPU fronts / DMA descriptors of
  /// distinct in-flight solves are emitted as one multi-tenant packed
  /// launch — the window head pays its full submission cost, riders pay
  /// packed_segment_issue_us instead of their launch/issue/fill overhead —
  /// and, when threads_per_solve > 1, all executor slots share ONE
  /// cooperative ThreadPool whose strip sessions time-share the workers at
  /// front granularity instead of oversubscribing the host with
  /// concurrency x threads_per_solve threads. Results stay bit-identical;
  /// only merged simulated timing changes. Individual requests opt out via
  /// RunConfig::pack_solves = 0.
  bool pack_solves = true;
  /// Inter-solve SIMD lane packing: small CPU-resolved requests of the
  /// same solve class (SolveClassKey — problem kind, contributing set,
  /// resolved mode, power-of-two shape bucket) are grouped into cohorts
  /// and executed in vector lockstep, one SIMD lane per solve
  /// (core/lane_cohort.h), instead of one-at-a-time through the
  /// per-solve path. -1 (default) caps cohorts at the active ISA's
  /// preferred lane width (8 with AVX2, else 4); 0 disables; N > 0 caps
  /// cohorts at N lanes. Results are bit-identical to solo solves; lane
  /// jobs record a serial-scan-priced timeline independent of the cohort
  /// they land in, so the merged report stays deterministic.
  long long lane_pack = -1;
  /// Resolve auto heterogeneous parameters (t_switch / t_share unset,
  /// tile = -1) through the engine's cross-solve TunerCache: the first
  /// request of an equivalence class pays one tuning sweep, later ones
  /// reuse it. Off by default — sweeps multiply solve work, so callers
  /// opt in (lddp_cli --tune in batch mode does).
  bool tune_auto = false;
  // --- request lifecycle (tentpole of the robustness layer) --------------
  /// Default per-request *simulated-time* deadline in milliseconds,
  /// enforced at every recorded op (front/tile/copy boundary) of every
  /// execution layer. 0 disables; RequestOptions::deadline_ms overrides
  /// per request. Simulated-clock deadlines are deterministic: whether a
  /// request times out never depends on host load.
  double deadline_ms = 0.0;
  /// Default retry budget per request. Attempt k + 1 runs one rung further
  /// down the degradation ladder (fused -> unfused -> untiled -> scalar ->
  /// serial reference); the final attempt always jumps to the
  /// injection-free serial reference rung, so any budget >= 1 guarantees a
  /// structured outcome for injected faults.
  std::size_t max_retries = 0;
  /// Deterministic backoff charged against the simulated clock before
  /// retry k (doubling: backoff * 2^(k-1)). Counts toward the deadline and
  /// delays the request's ops in the merged schedule.
  double retry_backoff_ms = 0.05;
  /// Deterministic fault-injection plan applied to every attempt that is
  /// not on the serial reference rung. Default-constructed = disarmed
  /// (zero rates) — the injection sites then cost one branch each.
  fault::FaultPlan chaos;
  /// If non-empty, the merged batch schedule is exported here as a
  /// chrome://tracing JSON file by wait().
  std::string trace_path;
};

/// Per-request outcome, in submission order.
struct BatchItemStats {
  std::size_t index = 0;       ///< submission order
  SolveStats solve;            ///< the solo run's stats (sim_seconds is the
                               ///< request's *alone* makespan)
  double est_seconds = 0.0;    ///< scheduler's cost-model estimate
  double weight = 1.0;         ///< WFQ weight given to submit()
  bool failed = false;         ///< solve threw (exception is on the future)
  /// Structured lifecycle outcome (chaos::to_string for display).
  chaos::RequestOutcome outcome = chaos::RequestOutcome::kOk;
  std::size_t retries = 0;          ///< extra attempts consumed
  double backoff_seconds = 0.0;     ///< simulated backoff accumulated
  /// Degradation the successful attempt ran with (empty = full-speed
  /// configuration): "fused->unfused", "tiled->untiled", "simd->scalar",
  /// "ref-serial", or "lane->solo" for a degraded lane-cohort job.
  std::string degraded;
  std::size_t dispatch_rank = 0;    ///< order the scheduler released it
  std::size_t completion_rank = 0;  ///< order it finished in the merge
  double sim_dispatch = 0.0;   ///< simulated instant its slot opened
  double sim_start = 0.0;      ///< first op start in the merged schedule
  double sim_end = 0.0;        ///< last op end in the merged schedule
  /// Queueing + service time in the batch (all requests arrive at t=0).
  double sim_latency = 0.0;
};

/// Deterministic simulated outcome of one batch (everything submitted
/// since the previous wait()).
struct BatchReport {
  std::size_t solves = 0;
  // Lifecycle outcome counts (sum equals `solves`).
  std::size_t ok_solves = 0;
  std::size_t retried_solves = 0;
  std::size_t degraded_solves = 0;
  std::size_t deadline_solves = 0;
  std::size_t cancelled_solves = 0;
  std::size_t failed_solves = 0;
  std::size_t retry_attempts = 0;  ///< extra attempts across all requests
  double sim_makespan = 0.0;        ///< merged-schedule completion time
  double serial_sim_seconds = 0.0;  ///< sum of solo makespans (baseline)
  double solves_per_sec = 0.0;      ///< solves / sim_makespan
  double serial_solves_per_sec = 0.0;
  double speedup = 0.0;             ///< serial_sim_seconds / sim_makespan
  double p50_latency = 0.0;         ///< median simulated latency
  double p99_latency = 0.0;
  // Cross-solve packing outcome of this batch's merge.
  std::size_t packs = 0;            ///< multi-tenant launches emitted
  std::size_t packed_ops = 0;       ///< rider segments re-priced in packs
  double pack_saved_seconds = 0.0;  ///< submission time amortized away
  /// Requests in this batch that ran with RunConfig::batch_kernels on
  /// (vectorized batch-front cell kernels). Affects real wall-clock and,
  /// through the calibrated vector-throughput term, the simulated CPU
  /// speed — never results.
  std::size_t batch_kernel_solves = 0;
  // Inter-solve lane packing outcome of this batch (real execution;
  // results are unchanged, wall-clock throughput is what moves).
  std::size_t lane_eligible_solves = 0;  ///< submitted lane-eligible
  std::size_t lane_packed_solves = 0;    ///< ran in a cohort of >= 2
  std::size_t lane_cohorts = 0;          ///< multi-lane cohorts formed
  /// Cells computed in vector lockstep / cells of all lane-executed
  /// solves (1.0 = every cell rode a full-width vector op).
  double lane_occupancy = 0.0;
  /// lane_packed_solves / lane_eligible_solves.
  double lane_hit_rate = 0.0;
  // Cross-solve tuning cache counters (cumulative since engine creation).
  std::size_t tuner_lookups = 0;
  std::size_t tuner_hits = 0;
  double tuner_hit_rate = 0.0;
  // Memory observability of this batch.
  std::size_t memory_budget_bytes = 0;  ///< echo of the configured budget
  /// High-water of co-running solves' estimated table bytes (what the
  /// admission budget meters).
  std::size_t peak_inflight_table_bytes = 0;
  /// Times the scheduler passed over its preferred request because the
  /// in-flight tables filled the budget.
  std::size_t budget_deferrals = 0;
  /// Shared buffer-pool arena counters (cumulative since engine
  /// creation): cache hits / heap misses and the checked-out high-water.
  sim::BufferPool::Stats arena;
  std::vector<BatchItemStats> items;  ///< submission order
};

namespace detail {

/// Cost-model makespan estimate used by the SJF / WFQ policies: the
/// platform's peak-throughput service time for `cells` cells. Coarse by
/// design — admission ordering only needs relative magnitudes.
double estimate_solve_seconds(const sim::PlatformSpec& platform,
                              const cpu::WorkProfile& work,
                              std::size_t cells);

/// Rung index of the guaranteed-clean reference configuration: scalar
/// serial scan, fault injection suppressed. The lifecycle loop's final
/// attempt always runs here, so a retry budget >= 1 turns every injected
/// fault into a structured kRetried/kDegraded success instead of kFailed.
inline constexpr std::size_t kReferenceRung = 4;

/// Graceful-degradation ladder, applied cumulatively: rung k of a retry
/// switches off one acceleration layer on top of everything rung k - 1
/// switched off. Results are bit-identical on every rung (each toggle is
/// documented result-preserving); only speed — and the set of fault sites
/// the attempt can reach — changes. Returns the label of the deepest
/// applied rung (nullptr at rung 0).
inline const char* degrade(RunConfig& rc, std::size_t rung) {
  const char* label = nullptr;  // non-null only when a setting changed:
                                // an already-minimal config that retries
                                // is kRetried, not kDegraded
  if (rung >= 1 && rc.fused_launches) {
    rc.fused_launches = false;  // no fused graphs => no kGraphReplay site
    label = "fused->unfused";
  }
  if (rung >= 2 && rc.tile != 0) {
    rc.tile = 0;  // legacy untiled strategies
    label = "tiled->untiled";
  }
  if (rung >= 3 && rc.batch_kernels) {
    rc.batch_kernels = false;  // scalar cell kernels
    label = "simd->scalar";
  }
  if (rung >= kReferenceRung && rc.mode != Mode::kCpuSerial) {
    rc.mode = Mode::kCpuSerial;  // single-thread reference scan
    label = "ref-serial";
  }
  return label;
}

/// Lane-eligibility ceiling: lane packing targets the many-small-solves
/// regime, where per-solve fronts are too short for intra-front SIMD.
/// 2M cells admits sequence problems up to ~1448^2 (1024-char inputs);
/// beyond that a solve fills vectors fine on its own and the interleaved
/// tables would just burn cache.
inline constexpr std::size_t kLaneMaxCells = 2'097'152;

/// Everything a lane-packed job needs at cohort-execution time. Owned by
/// the job as a type-erased shared_ptr; the lane_exec fn pointer (bound
/// to the problem type at submit()) casts it back.
template <LddpProblem P>
struct LanePayload {
  P problem;
  RunConfig rc;
  std::shared_ptr<std::promise<SolveResult<P>>> promise;
  sim::PlatformSpec platform;
};

/// Frontier-storage lane payload: the problem is shared, because the
/// fulfilled FrontierTable's remat callback keeps reading it after the
/// engine drops the job.
template <LddpProblem P>
struct FrontierLanePayload {
  std::shared_ptr<const P> problem;
  RunConfig rc;
  std::shared_ptr<std::promise<FrontierSolveResult<P>>> promise;
  sim::PlatformSpec platform;
};

/// Coarse estimated table residency of a request, for the admission
/// memory budget: the full grid, or — on the frontier tier — checkpoint
/// rows + last row + the rolling front rows. Device-side copies are
/// deliberately not modelled (the budget meters host table residency).
template <LddpProblem P>
std::size_t estimate_table_bytes(const P& p, const RunConfig& rc,
                                 bool frontier) {
  using V = typename P::Value;
  if (!frontier || rc.storage == Storage::kFull)
    return p.rows() * p.cols() * sizeof(V);
  const std::size_t k =
      resolve_checkpoint_interval(rc.checkpoint_interval, p.rows());
  const std::size_t resident_rows = (p.rows() - 1) / k + 2;  // ckpts + last
  return (resident_rows + 2) * p.cols() * sizeof(V);
}

}  // namespace detail

class BatchEngine {
 public:
  explicit BatchEngine(BatchConfig cfg = {});
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  const BatchConfig& config() const { return cfg_; }

  /// Admits one solve request. The request's RunConfig is honoured except
  /// for platform (forced to the engine's), pool / buffer_pool (engine
  /// managed) and trace/record sinks (engine managed). Returns nullopt if
  /// the queue is full under BatchAdmission::kReject; otherwise a future
  /// for the bit-exact SolveResult. Thread-safe.
  template <LddpProblem P>
  std::optional<std::future<SolveResult<P>>> submit(P problem,
                                                    RunConfig rc = {},
                                                    double weight = 1.0) {
    chaos::RequestOptions opts;
    opts.weight = weight;
    return submit(std::move(problem), std::move(rc), opts);
  }

  /// Lifecycle-aware admission: deadline / retry budget / cancellation
  /// token per request (unset fields inherit the BatchConfig defaults).
  /// Outcomes land in BatchItemStats::outcome; anything but success also
  /// puts a structured exception (fault::CancelledError,
  /// fault::DeadlineExceededError, fault::InjectedFault or the genuine
  /// error) on the future.
  template <LddpProblem P>
  std::optional<std::future<SolveResult<P>>> submit(
      P problem, RunConfig rc, const chaos::RequestOptions& opts) {
    LDDP_CHECK_MSG(opts.weight > 0.0, "batch weight must be positive");
    auto promise = std::make_shared<std::promise<SolveResult<P>>>();
    std::future<SolveResult<P>> future = promise->get_future();
    auto job = std::make_unique<Job>();
    job->weight = opts.weight;
    const double deadline_ms =
        opts.deadline_ms < 0.0 ? cfg_.deadline_ms : opts.deadline_ms;
    job->deadline_s = deadline_ms > 0.0 ? deadline_ms * 1e-3 : 0.0;
    job->max_retries = opts.max_retries < 0
                           ? cfg_.max_retries
                           : static_cast<std::size_t>(opts.max_retries);
    job->chaos_plan = cfg_.chaos;
    job->cancel = opts.cancel;
    job->est = detail::estimate_solve_seconds(
        cfg_.platform, work_profile_of(problem),
        problem.rows() * problem.cols());
    job->packable =
        rc.pack_solves == -1 ? cfg_.pack_solves : rc.pack_solves != 0;
    job->batch_kernels = rc.batch_kernels;
    job->est_table_bytes =
        detail::estimate_table_bytes(problem, rc, /*frontier=*/false);
    // Lane packing: small CPU-resolved requests become cohort-groupable
    // lane jobs, executed by lane_exec over the whole cohort instead of
    // job->run. Eligibility is a pure function of the request (never of
    // what else is in flight), so the recorded timeline — serial-scan
    // pricing, the reference mode for lane cohorts — is deterministic.
    const std::size_t cells = problem.rows() * problem.cols();
    const Mode resolved = detail::resolve_auto(rc.mode, cells);
    if (lane_limit() > 1 && rc.batch_kernels &&
        (resolved == Mode::kCpuSerial || resolved == Mode::kCpuParallel) &&
        cells <= detail::kLaneMaxCells) {
      job->lane_key = make_solve_class_key(problem, rc).token();
      job->lane_exec = &BatchEngine::lane_exec_impl<P>;
      job->lane_payload = std::make_shared<detail::LanePayload<P>>(
          detail::LanePayload<P>{std::move(problem), rc, promise,
                                 cfg_.platform});
      if (!admit(std::move(job))) return std::nullopt;
      return future;
    }
    job->run = [problem = std::move(problem), rc, promise,
                platform = cfg_.platform, tune_auto = cfg_.tune_auto,
                tuner = &tuner_cache_,
                backoff_s = cfg_.retry_backoff_ms * 1e-3](
                   Job& j, cpu::ThreadPool* pool,
                   sim::BufferPool* buffers) mutable {
      rc.platform = platform;
      rc.pool = pool;
      // The engine owns the substrate decision (BatchConfig::schedule):
      // pin the per-request schedule to kStatic so solve() uses the
      // engine-assigned pool verbatim instead of re-routing to the
      // process-wide shared executor.
      rc.schedule = cpu::Schedule::kStatic;
      rc.buffer_pool = buffers;
      // Cross-solve tuning cache: auto-parameter heterogeneous requests
      // reuse one sweep per equivalence class (first contact pays it).
      // Resolved once, before the attempt loop and outside any fault
      // scope — tuning sweeps are shared infrastructure, never faulted.
      if (tune_auto &&
          detail::resolve_auto(rc.mode, problem.rows() * problem.cols()) ==
              Mode::kHeterogeneous &&
          rc.hetero.t_switch < 0 && rc.hetero.t_share < 0) {
        const TunerCache::Entry tuned = tuner->lookup_or_tune(problem, rc);
        rc.hetero = tuned.params;
        if (rc.tile == -1) rc.tile = tuned.tile;
      }
      rc.trace_path.clear();
      run_lifecycle<SolveResult<P>>(
          j, *promise, rc, backoff_s,
          [&](const RunConfig& arc) { return solve(problem, arc); });
    };
    if (!admit(std::move(job))) return std::nullopt;
    return future;
  }

  /// Frontier-storage admission: like submit(), but the future resolves
  /// to a FrontierSolveResult — checkpoint rows + last row + the remat
  /// callback instead of the full grid — and the admission memory budget
  /// meters the frontier tier's resident bytes, so far more solves of a
  /// given size fit in flight. Lane-eligible requests have NO cell cap on
  /// this path: kLaneMaxCells exists to bound interleaved full tables,
  /// and frontier lanes roll two rows each. The engine shares ownership
  /// of the problem with the returned table (its remat callback reads the
  /// problem on every interior access).
  template <LddpProblem P>
  std::optional<std::future<FrontierSolveResult<P>>> submit_frontier(
      P problem, RunConfig rc = {}, const chaos::RequestOptions& opts = {}) {
    LDDP_CHECK_MSG(opts.weight > 0.0, "batch weight must be positive");
    auto promise =
        std::make_shared<std::promise<FrontierSolveResult<P>>>();
    std::future<FrontierSolveResult<P>> future = promise->get_future();
    auto job = std::make_unique<Job>();
    job->weight = opts.weight;
    const double deadline_ms =
        opts.deadline_ms < 0.0 ? cfg_.deadline_ms : opts.deadline_ms;
    job->deadline_s = deadline_ms > 0.0 ? deadline_ms * 1e-3 : 0.0;
    job->max_retries = opts.max_retries < 0
                           ? cfg_.max_retries
                           : static_cast<std::size_t>(opts.max_retries);
    job->chaos_plan = cfg_.chaos;
    job->cancel = opts.cancel;
    job->est = detail::estimate_solve_seconds(
        cfg_.platform, work_profile_of(problem),
        problem.rows() * problem.cols());
    job->packable =
        rc.pack_solves == -1 ? cfg_.pack_solves : rc.pack_solves != 0;
    job->batch_kernels = rc.batch_kernels;
    job->est_table_bytes =
        detail::estimate_table_bytes(problem, rc, /*frontier=*/true);
    const std::size_t cells = problem.rows() * problem.cols();
    const Mode resolved = detail::resolve_auto(rc.mode, cells);
    auto sp = std::make_shared<const P>(std::move(problem));
    if (rc.storage != Storage::kFull && lane_limit() > 1 &&
        rc.batch_kernels &&
        (resolved == Mode::kCpuSerial || resolved == Mode::kCpuParallel)) {
      job->lane_key = make_solve_class_key(*sp, rc).token() + "|frontier";
      job->lane_exec = &BatchEngine::lane_exec_frontier_impl<P>;
      job->lane_payload = std::make_shared<detail::FrontierLanePayload<P>>(
          detail::FrontierLanePayload<P>{sp, rc, promise, cfg_.platform});
      if (!admit(std::move(job))) return std::nullopt;
      return future;
    }
    job->run = [sp, rc, promise, platform = cfg_.platform,
                backoff_s = cfg_.retry_backoff_ms * 1e-3](
                   Job& j, cpu::ThreadPool* pool,
                   sim::BufferPool* buffers) mutable {
      rc.platform = platform;
      rc.pool = pool;
      // The engine owns the substrate decision (BatchConfig::schedule):
      // pin the per-request schedule to kStatic so solve() uses the
      // engine-assigned pool verbatim instead of re-routing to the
      // process-wide shared executor.
      rc.schedule = cpu::Schedule::kStatic;
      rc.buffer_pool = buffers;
      rc.trace_path.clear();
      run_lifecycle<FrontierSolveResult<P>>(
          j, *promise, rc, backoff_s,
          [&](const RunConfig& arc) { return solve_frontier(sp, arc); });
    };
    if (!admit(std::move(job))) return std::nullopt;
    return future;
  }

  /// Number of requests waiting for a slot right now (diagnostics).
  std::size_t pending() const;

  /// Drains the queue, joins all in-flight solves, and returns the
  /// deterministic merged-schedule report for every request submitted
  /// since the previous wait(). The engine is reusable afterwards.
  BatchReport wait();

 private:
  struct Job {
    std::size_t index = 0;
    double est = 0.0;
    double weight = 1.0;
    /// Estimated table residency, metered by the admission memory budget
    /// while the job is in flight.
    std::size_t est_table_bytes = 0;
    bool packable = true;  // eligible for cross-solve packing in the merge
    bool batch_kernels = true;  // request ran with batch-front cell kernels
    std::function<void(Job&, cpu::ThreadPool*, sim::BufferPool*)> run;
    sim::Timeline recorded;  // the solve's private simulated schedule
    SolveStats stats;
    bool failed = false;
    bool done = false;
    // Request lifecycle (resolved at submit: per-request options override
    // the BatchConfig defaults).
    chaos::RequestOutcome outcome = chaos::RequestOutcome::kOk;
    std::size_t retries = 0;
    double backoff_seconds = 0.0;  // simulated backoff accumulated
    const char* degraded = nullptr;  // ladder label of the final attempt
    double deadline_s = 0.0;         // simulated-time budget; 0 = none
    std::size_t max_retries = 0;
    fault::FaultPlan chaos_plan;     // engine plan (disarmed = inert)
    lddp::chaos::CancelToken cancel;
    // Lane packing: a non-empty lane_key makes the job cohort-groupable
    // with same-key jobs; lane_exec (bound to the problem type) then runs
    // the whole cohort and fulfils every promise, replacing job->run.
    std::string lane_key;
    void (*lane_exec)(Job**, std::size_t) = nullptr;
    std::shared_ptr<void> lane_payload;
    std::size_t lane_cohort = 0;  // lanes in the cohort it ran in (0=not lane)
    bool lane_head = false;       // first job of its cohort (stats carrier)
    std::size_t lane_lockstep_cells = 0;  // head only: cohort lockstep cells
    std::size_t lane_total_cells = 0;     // head only: cohort total cells
  };

  /// Request-lifecycle loop shared by the solve() and solve_frontier()
  /// job bodies: attempt, and on failure walk the degradation ladder with
  /// deterministic simulated-time backoff. The final attempt always jumps
  /// to the injection-free serial reference rung, so a retry budget >= 1
  /// guarantees injected faults end in a structured success, never
  /// kFailed. `attempt` runs one configuration and returns a result whose
  /// .stats is the solo SolveStats.
  template <typename Result, typename AttemptFn>
  static void run_lifecycle(Job& j, std::promise<Result>& promise,
                            const RunConfig& rc, double backoff_s,
                            AttemptFn&& attempt) {
    const std::size_t max_attempts = j.max_retries + 1;
    std::exception_ptr last_error;
    for (std::size_t k = 0; k < max_attempts; ++k) {
      const std::size_t rung =
          k < j.max_retries ? k : (k > 0 ? detail::kReferenceRung : 0);
      RunConfig attempt_rc = rc;
      j.degraded = detail::degrade(attempt_rc, rung);
      if (k > 0)
        j.backoff_seconds +=
            backoff_s * static_cast<double>(1ull << (k - 1));
      if (j.cancel.cancelled()) {
        j.outcome = chaos::RequestOutcome::kCancelled;
        j.failed = true;
        j.retries = k;
        promise.set_exception(
            std::make_exception_ptr(fault::CancelledError()));
        return;
      }
      fault::RequestControl control;
      if (j.cancel.valid()) control.cancel = j.cancel.flag();
      if (j.deadline_s > 0.0) {
        // Backoff already spent eats into the simulated budget; a
        // request whose budget is gone before the attempt starts times
        // out without running.
        const double remaining = j.deadline_s - j.backoff_seconds;
        if (remaining <= 0.0) {
          j.outcome = chaos::RequestOutcome::kDeadlineExceeded;
          j.failed = true;
          j.retries = k;
          promise.set_exception(std::make_exception_ptr(
              fault::DeadlineExceededError(j.deadline_s)));
          return;
        }
        control.deadline_s = remaining;
      }
      if (control.cancel != nullptr || control.deadline_s > 0.0)
        attempt_rc.control = &control;
      attempt_rc.record_timeline = &j.recorded;
      try {
        std::optional<fault::FaultScope> scope;
        if (j.chaos_plan.armed() && rung < detail::kReferenceRung)
          scope.emplace(&j.chaos_plan, j.index, k);
        Result result = attempt(attempt_rc);
        j.stats = result.stats;
        j.retries = k;
        j.outcome = k == 0 ? chaos::RequestOutcome::kOk
                   : j.degraded != nullptr
                       ? chaos::RequestOutcome::kDegraded
                       : chaos::RequestOutcome::kRetried;
        promise.set_value(std::move(result));
        return;
      } catch (const fault::CancelledError&) {
        j.outcome = chaos::RequestOutcome::kCancelled;
        j.failed = true;
        j.retries = k;
        promise.set_exception(std::current_exception());
        return;
      } catch (const fault::DeadlineExceededError&) {
        j.outcome = chaos::RequestOutcome::kDeadlineExceeded;
        j.failed = true;
        j.retries = k;
        promise.set_exception(std::current_exception());
        return;
      } catch (...) {
        last_error = std::current_exception();
        j.retries = k;
      }
    }
    j.outcome = chaos::RequestOutcome::kFailed;
    j.failed = true;
    promise.set_exception(last_error);
  }

  /// Executes one cohort of same-class lane jobs (size >= 1): solves them
  /// in SIMD lockstep, prices each exactly like a solo serial scan, and
  /// fulfils every promise. A cohort-level failure — an injected
  /// lane-kernel fault, a lane's cancellation observed mid-row, a genuine
  /// error — re-runs each lane alone on the injection-free per-solve
  /// sweep, so one poisoned request can degrade but never fail its
  /// cohort-mates. Lane degradation charges NO backoff: each lane's
  /// recorded timeline stays the pure solo serial-scan pricing, so the
  /// merged report remains independent of racy cohort formation.
  template <LddpProblem P>
  static void lane_exec_impl(Job** cohort, std::size_t n) {
    std::vector<detail::LanePayload<P>*> pls(n);
    std::vector<const P*> probs(n);
    for (std::size_t k = 0; k < n; ++k) {
      pls[k] =
          static_cast<detail::LanePayload<P>*>(cohort[k]->lane_payload.get());
      probs[k] = &pls[k]->problem;
    }
    Stopwatch wall;
    detail::LaneExecStats lst;
    std::vector<Grid<typename P::Value>> tables;
    bool cohort_ok = true;
    // Lifecycle hook for the lockstep sweep: the cohort head's fault plan
    // draws kLaneKernel decisions per row, and every lane's cancellation
    // flag is polled so a cancel lands within one row of being raised.
    const bool armed = cohort[0]->chaos_plan.armed();
    bool any_cancel = false;
    for (std::size_t k = 0; k < n; ++k)
      any_cancel = any_cancel || cohort[k]->cancel.valid();
    std::function<void(std::size_t)> poll;
    if (armed || any_cancel) {
      poll = [cohort, n](std::size_t row) {
        fault::maybe_throw(fault::Site::kLaneKernel, row);
        for (std::size_t k = 0; k < n; ++k)
          if (cohort[k]->cancel.cancelled()) throw fault::CancelledError();
      };
    }
    try {
      std::optional<fault::FaultScope> scope;
      if (armed)
        scope.emplace(&cohort[0]->chaos_plan, cohort[0]->index,
                      /*attempt=*/0);
      tables = detail::solve_lane_cohort(probs, /*batch_kernels=*/true, &lst,
                                         poll);
    } catch (...) {
      cohort_ok = false;
    }
    const double per_solve_wall =
        wall.seconds() / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) {
      Job& j = *cohort[k];
      const P& p = pls[k]->problem;
      try {
        if (j.cancel.cancelled()) throw fault::CancelledError();
        // The solo fallback runs poll-free and outside any fault scope —
        // it is the cohort's guaranteed reference rung.
        Grid<typename P::Value> table =
            cohort_ok ? std::move(tables[k])
                      : std::move(detail::solve_lane_cohort(
                            std::vector<const P*>{&p}, true, nullptr)[0]);
        // Identical pricing to a solo serial scan (solve_cpu_serial),
        // independent of the cohort this job landed in — the merged
        // simulated report must not depend on racy cohort formation.
        const ContributingSet deps = p.deps();
        const bool use_batch = has_batch_front_v<P> && !deps.has_w();
        sim::Platform plat(pls[k]->platform);
        fault::RequestControl control;
        if (j.cancel.valid()) control.cancel = j.cancel.flag();
        if (j.deadline_s > 0.0) control.deadline_s = j.deadline_s;
        if (control.cancel != nullptr || control.deadline_s > 0.0)
          plat.timeline().set_request_control(&control);
        plat.cpu_charge(p.rows() * p.cols(),
                        detail::cpu_work_for(p, use_batch),
                        /*parallel=*/false);
        plat.timeline().set_request_control(nullptr);
        SolveStats stats;
        stats.mode_used = Mode::kCpuSerial;
        stats.pattern = classify(deps);
        stats.transfer = TransferNeed::kNone;
        stats.fronts = p.rows();
        stats.cells = p.rows() * p.cols();
        detail::finish_stats(stats, plat, per_solve_wall);
        j.recorded = plat.timeline();
        j.stats = stats;
        if (!cohort_ok) {
          j.outcome = lddp::chaos::RequestOutcome::kDegraded;
          j.degraded = "lane->solo";
          j.retries = 1;
        } else {
          j.outcome = lddp::chaos::RequestOutcome::kOk;
        }
        pls[k]->promise->set_value(
            SolveResult<P>{std::move(table), stats});
      } catch (const fault::CancelledError&) {
        j.outcome = lddp::chaos::RequestOutcome::kCancelled;
        j.failed = true;
        pls[k]->promise->set_exception(std::current_exception());
      } catch (const fault::DeadlineExceededError&) {
        j.outcome = lddp::chaos::RequestOutcome::kDeadlineExceeded;
        j.failed = true;
        pls[k]->promise->set_exception(std::current_exception());
      } catch (...) {
        j.outcome = lddp::chaos::RequestOutcome::kFailed;
        j.failed = true;
        pls[k]->promise->set_exception(std::current_exception());
      }
      j.lane_cohort = n;
    }
    cohort[0]->lane_head = true;
    cohort[0]->lane_lockstep_cells = cohort_ok ? lst.lockstep_cells : 0;
    cohort[0]->lane_total_cells = cohort_ok ? lst.total_cells : 0;
  }

  /// Frontier analogue of lane_exec_impl: the cohort rolls two-row lane
  /// buffers (solve_lane_cohort_frontier), each lane keeps only its
  /// checkpoint rows + last row, and every fulfilled table carries the
  /// remat callback plus shared ownership of its problem, so results stay
  /// valid after the engine drops the job. Pricing, lifecycle hooks and
  /// the solo degradation rung mirror the full-table cohort exactly.
  template <LddpProblem P>
  static void lane_exec_frontier_impl(Job** cohort, std::size_t n) {
    using V = typename P::Value;
    std::vector<detail::FrontierLanePayload<P>*> pls(n);
    std::vector<const P*> probs(n);
    std::vector<std::size_t> ks(n);
    for (std::size_t k = 0; k < n; ++k) {
      pls[k] = static_cast<detail::FrontierLanePayload<P>*>(
          cohort[k]->lane_payload.get());
      probs[k] = pls[k]->problem.get();
      ks[k] = detail::resolve_checkpoint_interval(
          pls[k]->rc.checkpoint_interval, probs[k]->rows());
    }
    Stopwatch wall;
    detail::LaneExecStats lst;
    std::vector<FrontierTable<V>> tables;
    bool cohort_ok = true;
    const bool armed = cohort[0]->chaos_plan.armed();
    bool any_cancel = false;
    for (std::size_t k = 0; k < n; ++k)
      any_cancel = any_cancel || cohort[k]->cancel.valid();
    std::function<void(std::size_t)> poll;
    if (armed || any_cancel) {
      poll = [cohort, n](std::size_t row) {
        fault::maybe_throw(fault::Site::kLaneKernel, row);
        for (std::size_t k = 0; k < n; ++k)
          if (cohort[k]->cancel.cancelled()) throw fault::CancelledError();
      };
    }
    try {
      std::optional<fault::FaultScope> scope;
      if (armed)
        scope.emplace(&cohort[0]->chaos_plan, cohort[0]->index,
                      /*attempt=*/0);
      tables = detail::solve_lane_cohort_frontier(probs, ks,
                                                  /*batch_kernels=*/true,
                                                  &lst, poll);
    } catch (...) {
      cohort_ok = false;
    }
    const double per_solve_wall =
        wall.seconds() / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) {
      Job& j = *cohort[k];
      const P& p = *probs[k];
      try {
        if (j.cancel.cancelled()) throw fault::CancelledError();
        FrontierTable<V> table =
            cohort_ok ? std::move(tables[k])
                      : std::move(detail::solve_lane_cohort_frontier(
                            std::vector<const P*>{&p},
                            std::vector<std::size_t>{ks[k]}, true,
                            nullptr)[0]);
        detail::attach_row_remat(
            table, [sp = pls[k]->problem]() -> const P& { return *sp; },
            /*batch=*/true);
        table.keep_alive(pls[k]->problem);
        // Identical pricing to a solo serial scan, independent of the
        // cohort this job landed in (see lane_exec_impl).
        const ContributingSet deps = p.deps();
        const bool use_batch = has_batch_front_v<P> && !deps.has_w();
        sim::Platform plat(pls[k]->platform);
        fault::RequestControl control;
        if (j.cancel.valid()) control.cancel = j.cancel.flag();
        if (j.deadline_s > 0.0) control.deadline_s = j.deadline_s;
        if (control.cancel != nullptr || control.deadline_s > 0.0)
          plat.timeline().set_request_control(&control);
        plat.cpu_charge(p.rows() * p.cols(),
                        detail::cpu_work_for(p, use_batch),
                        /*parallel=*/false);
        plat.timeline().set_request_control(nullptr);
        SolveStats stats;
        stats.mode_used = Mode::kCpuSerial;
        stats.pattern = classify(deps);
        stats.transfer = TransferNeed::kNone;
        stats.fronts = p.rows();
        stats.cells = p.rows() * p.cols();
        detail::finish_stats(stats, plat, per_solve_wall);
        detail::finish_frontier_stats(&stats, table,
                                      2 * p.cols() * sizeof(V));
        j.recorded = plat.timeline();
        j.stats = stats;
        if (!cohort_ok) {
          j.outcome = lddp::chaos::RequestOutcome::kDegraded;
          j.degraded = "lane->solo";
          j.retries = 1;
        } else {
          j.outcome = lddp::chaos::RequestOutcome::kOk;
        }
        pls[k]->promise->set_value(
            FrontierSolveResult<P>{std::move(table), stats});
      } catch (const fault::CancelledError&) {
        j.outcome = lddp::chaos::RequestOutcome::kCancelled;
        j.failed = true;
        pls[k]->promise->set_exception(std::current_exception());
      } catch (const fault::DeadlineExceededError&) {
        j.outcome = lddp::chaos::RequestOutcome::kDeadlineExceeded;
        j.failed = true;
        pls[k]->promise->set_exception(std::current_exception());
      } catch (...) {
        j.outcome = lddp::chaos::RequestOutcome::kFailed;
        j.failed = true;
        pls[k]->promise->set_exception(std::current_exception());
      }
      j.lane_cohort = n;
    }
    cohort[0]->lane_head = true;
    cohort[0]->lane_lockstep_cells = cohort_ok ? lst.lockstep_cells : 0;
    cohort[0]->lane_total_cells = cohort_ok ? lst.total_cells : 0;
  }

  bool admit(std::unique_ptr<Job> job);
  /// Whether admitting `j` on top of the in-flight tables (plus `extra`
  /// bytes already claimed by the cohort being formed) fits the memory
  /// budget. An idle engine always fits (no starvation).
  bool fits_locked(const Job& j, std::size_t extra) const;
  bool has_admissible_locked() const;
  /// nullptr when every pending job is budget-deferred.
  Job* pop_next_locked();
  /// Empty when every pending job is budget-deferred. Charges the popped
  /// cohort's table bytes against the in-flight total.
  std::vector<Job*> pop_cohort_locked();
  std::size_t lane_limit() const;
  void run_job(Job& job, cpu::ThreadPool* pool);
  void run_cohort(const std::vector<Job*>& cohort, cpu::ThreadPool* pool);
  void worker_loop(std::size_t slot);
  void drain_one_locked(std::unique_lock<std::mutex>& lock);
  BatchReport build_report(
      const std::vector<std::unique_ptr<Job>>& jobs) const;

  BatchConfig cfg_;
  sim::BufferPool buffers_;  // shared arena cache across all solves
  TunerCache tuner_cache_;   // shared auto-parameter sweeps across solves

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // workers: queue non-empty / stop
  std::condition_variable cv_space_;  // submitters: queue has room
  std::condition_variable cv_done_;   // wait(): everything finished
  std::vector<std::unique_ptr<Job>> jobs_;  // this batch, submission order
  std::vector<Job*> pending_;               // admitted, not yet started
  std::size_t running_ = 0;
  bool stop_ = false;
  // Admission memory budget bookkeeping (all under mu_).
  std::size_t inflight_table_bytes_ = 0;
  std::size_t peak_inflight_table_bytes_ = 0;
  std::size_t budget_deferrals_ = 0;

  // One private pool per executor slot (index 0 doubles as the inline
  // slot when worker_threads == 0). With pack_solves, slots instead share
  // coop_pool_ — one cooperative pool of threads_per_solve workers whose
  // strip sessions time-share at front granularity (no host
  // oversubscription).
  std::vector<std::unique_ptr<cpu::ThreadPool>> pools_;
  std::unique_ptr<cpu::ThreadPool> coop_pool_;
  // Stealing substrate (BatchConfig::schedule resolving to kStealing): ONE
  // engine-owned executor shared by every slot, fronted by a workerless
  // facade pool. Replaces both private pools and the coop pool.
  std::unique_ptr<cpu::StealingExecutor> stealing_exec_;
  std::unique_ptr<cpu::ThreadPool> stealing_pool_;
  std::vector<std::thread> workers_;

  cpu::ThreadPool* slot_pool(std::size_t slot) {
    if (stealing_pool_) return stealing_pool_.get();
    return coop_pool_ ? coop_pool_.get() : pools_[slot].get();
  }
};

}  // namespace lddp
