// The 3-D LDDP-Plus problem interface (the k = 3 instance of the paper's
// k-dimensional class definition in Section II).
//
// The representative set generalizes to the 7 lower-corner offsets
// (di, dj, dk) in {0,1}^3 \ {(0,0,0)}: cell (i,j,k) may read
// (i-di, j-dj, k-dk). All 7 are mutually non-conflicting (no straight line
// through two of them passes through the centre cell) and every one of
// them strictly decreases the plane index d = i+j+k, so the anti-diagonal
// plane wavefront serves any non-empty contributing subset. A richer 3-D
// taxonomy (the analogue of Table I's six patterns, from offsets such as
// (1,-1,0)) is left as future work, mirroring the paper's own 2-D scoping.
#pragma once

#include <concepts>
#include <cstdint>

#include "core/problem.h"

namespace lddp {

/// One 3-D representative offset, as a bit. Naming: kD<di><dj><dk>.
enum class Dep3 : std::uint8_t {
  kD100 = 1u << 0,  ///< (i-1, j,   k  )
  kD010 = 1u << 1,  ///< (i,   j-1, k  )
  kD001 = 1u << 2,  ///< (i,   j,   k-1)
  kD110 = 1u << 3,  ///< (i-1, j-1, k  )
  kD101 = 1u << 4,  ///< (i-1, j,   k-1)
  kD011 = 1u << 5,  ///< (i,   j-1, k-1)
  kD111 = 1u << 6,  ///< (i-1, j-1, k-1)
};

/// Non-empty subset of the 7 lower-corner offsets.
class ContributingSet3 {
 public:
  explicit constexpr ContributingSet3(std::uint8_t mask) : mask_(mask) {
    if (mask_ == 0 || mask_ > 127)
      throw CheckError("ContributingSet3 mask must be in [1, 127]");
  }
  ContributingSet3(std::initializer_list<Dep3> deps) : mask_(0) {
    for (Dep3 d : deps) mask_ |= static_cast<std::uint8_t>(d);
    LDDP_CHECK_MSG(mask_ != 0, "contributing set must be non-empty");
  }

  constexpr bool has(Dep3 d) const {
    return (mask_ & static_cast<std::uint8_t>(d)) != 0;
  }
  constexpr std::uint8_t mask() const { return mask_; }
  constexpr bool operator==(const ContributingSet3&) const = default;

 private:
  std::uint8_t mask_;
};

inline constexpr int kNumContributingSets3 = 127;

/// Values of the 7 representative cells; unused / out-of-table entries
/// hold the problem's boundary value.
template <typename T>
struct Neighbors3 {
  T d100, d010, d001, d110, d101, d011, d111;
};

/// A 3-D LDDP-Plus problem. Same contract as the 2-D concept: compute()
/// must be pure and read only declared offsets.
template <typename P>
concept LddpProblem3 = requires(const P& p, std::size_t i, std::size_t j,
                                std::size_t k,
                                const Neighbors3<typename P::Value>& nb) {
  typename P::Value;
  requires std::is_trivially_copyable_v<typename P::Value>;
  { p.ni() } -> std::convertible_to<std::size_t>;
  { p.nj() } -> std::convertible_to<std::size_t>;
  { p.nk() } -> std::convertible_to<std::size_t>;
  { p.deps() } -> std::convertible_to<ContributingSet3>;
  { p.boundary() } -> std::convertible_to<typename P::Value>;
  { p.compute(i, j, k, nb) } -> std::convertible_to<typename P::Value>;
};

template <typename P>
cpu::WorkProfile work_profile_of3(const P& p) {
  if constexpr (requires {
                  { p.work() } -> std::convertible_to<cpu::WorkProfile>;
                }) {
    return p.work();
  } else {
    return cpu::WorkProfile{};
  }
}

template <typename P>
std::size_t input_bytes_of3(const P& p) {
  if constexpr (requires {
                  { p.input_bytes() } -> std::convertible_to<std::size_t>;
                }) {
    return p.input_bytes();
  } else {
    return 0;
  }
}

template <typename P>
std::size_t result_bytes_of3(const P& p) {
  if constexpr (requires {
                  { p.result_bytes() } -> std::convertible_to<std::size_t>;
                }) {
    return p.result_bytes();
  } else {
    return p.ni() * p.nj() * p.nk() * sizeof(typename P::Value);
  }
}

}  // namespace lddp
