#include "core/pattern.h"

namespace lddp {

Pattern classify(ContributingSet deps) {
  // Table I, all 15 rows. Order of the tests matters:
  //  * W and NE together span the widest reach — knight-move (2i+j fronts);
  //  * W and N (without NE) couple row and column — anti-diagonal;
  //  * a remaining W ({W} or {W, NW}) only reaches left — vertical;
  //  * a lone NW (resp. lone NE) gives the inverted-L shells;
  //  * everything else reads only row i-1 — horizontal.
  if (deps.has_w() && deps.has_ne()) return Pattern::kKnightMove;
  if (deps.has_w() && deps.has_n()) return Pattern::kAntiDiagonal;
  if (deps.has_w()) return Pattern::kVertical;
  if (deps.has_nw() && !deps.has_n() && !deps.has_ne())
    return Pattern::kInvertedL;
  if (deps.has_ne() && !deps.has_n() && !deps.has_nw())
    return Pattern::kMirroredInvertedL;
  return Pattern::kHorizontal;
}

Pattern canonical(Pattern p) {
  switch (p) {
    case Pattern::kVertical:
      return Pattern::kHorizontal;
    case Pattern::kMirroredInvertedL:
      return Pattern::kInvertedL;
    default:
      return p;
  }
}

bool is_symmetric_alias(Pattern p) {
  return p == Pattern::kVertical || p == Pattern::kMirroredInvertedL;
}

TransferNeed transfer_need(ContributingSet deps) {
  switch (classify(deps)) {
    case Pattern::kAntiDiagonal:
      // Row-strip split; GPU reads the CPU's boundary row via N/NW/W.
      return TransferNeed::kOneWay;
    case Pattern::kKnightMove:
      // Column split; NE crosses GPU->CPU while W/NW cross CPU->GPU.
      return TransferNeed::kTwoWay;
    case Pattern::kInvertedL:
    case Pattern::kMirroredInvertedL:
      // Column-strip split; the single diagonal dependency crosses one way.
      return TransferNeed::kOneWay;
    case Pattern::kHorizontal: {
      // Column split: NW crosses CPU->GPU, NE crosses GPU->CPU, N stays
      // within each unit's own columns.
      const bool cpu_to_gpu = deps.has_nw();
      const bool gpu_to_cpu = deps.has_ne();
      if (cpu_to_gpu && gpu_to_cpu) return TransferNeed::kTwoWay;
      if (cpu_to_gpu || gpu_to_cpu) return TransferNeed::kOneWay;
      return TransferNeed::kNone;
    }
    case Pattern::kVertical:
      // Row-strip split: NW crosses CPU->GPU; W stays within the strip.
      return deps.has_nw() ? TransferNeed::kOneWay : TransferNeed::kNone;
  }
  LDDP_CHECK_MSG(false, "unreachable: invalid pattern");
  return TransferNeed::kNone;
}

bool is_horizontal_case2(ContributingSet deps) {
  return deps.has_nw() && deps.has_ne();
}

std::string to_string(Pattern p) {
  switch (p) {
    case Pattern::kAntiDiagonal:
      return "Anti-diagonal";
    case Pattern::kHorizontal:
      return "Horizontal";
    case Pattern::kInvertedL:
      return "Inverted-L";
    case Pattern::kKnightMove:
      return "Knight-Move";
    case Pattern::kVertical:
      return "Vertical";
    case Pattern::kMirroredInvertedL:
      return "mInverted-L";
  }
  return "?";
}

std::string to_string(TransferNeed t) {
  switch (t) {
    case TransferNeed::kNone:
      return "none";
    case TransferNeed::kOneWay:
      return "1 way";
    case TransferNeed::kTwoWay:
      return "2 way";
  }
  return "?";
}

}  // namespace lddp
