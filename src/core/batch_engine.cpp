#include "core/batch_engine.h"

#include <algorithm>
#include <cmath>

#include "core/lane_kernels.h"
#include "sim/platform.h"
#include "sim/timeline_merge.h"

namespace lddp {

std::string to_string(BatchSched s) {
  switch (s) {
    case BatchSched::kFifo:
      return "fifo";
    case BatchSched::kSjf:
      return "sjf";
    case BatchSched::kWfq:
      return "wfq";
  }
  return "?";
}

namespace detail {

double estimate_solve_seconds(const sim::PlatformSpec& platform,
                              const cpu::WorkProfile& work,
                              std::size_t cells) {
  const double cpu_rate = cpu::cpu_peak_throughput(platform.cpu, work);
  return static_cast<double>(cells) / std::max(cpu_rate, 1.0);
}

}  // namespace detail

namespace {

/// Policy key of a job: lower runs first; ties broken by submission index.
double sched_key(BatchSched sched, double est, double weight,
                 std::size_t index) {
  switch (sched) {
    case BatchSched::kFifo:
      return static_cast<double>(index);
    case BatchSched::kSjf:
      return est;
    case BatchSched::kWfq:
      return est / weight;
  }
  return static_cast<double>(index);
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace

BatchEngine::BatchEngine(BatchConfig cfg) : cfg_(std::move(cfg)) {
  LDDP_CHECK_MSG(cfg_.concurrency >= 1, "batch concurrency must be >= 1");
  LDDP_CHECK_MSG(cfg_.queue_capacity >= 1, "batch queue must hold >= 1");
  std::size_t nworkers;
  if (cfg_.worker_threads < 0) {
    nworkers = std::min<std::size_t>(
        cfg_.concurrency,
        std::max(1u, std::thread::hardware_concurrency()));
  } else {
    nworkers = static_cast<std::size_t>(cfg_.worker_threads);
  }
  const std::size_t nslots = std::max<std::size_t>(nworkers, 1);
  pools_.reserve(nslots);
  // Substrate decision. kStealing replaces both the per-slot private pools
  // and the fixed coop pool with ONE engine-owned work-stealing executor:
  // every slot submits morsels to the same worker set, so per-solve thread
  // quotas become soft priorities instead of hard partitions. The executor
  // is sized to the machine, not to concurrency x threads_per_solve —
  // extra workers beyond the engine's own slot threads, never negative
  // (on few-core hosts the slots themselves saturate the machine and all
  // fronts run inline, avoiding oversubscription entirely).
  const bool stealing =
      cpu::resolve_schedule(cfg_.schedule) == cpu::Schedule::kStealing &&
      cfg_.threads_per_solve > 1;
  if (stealing) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t want = std::min<std::size_t>(
        hw, nslots * static_cast<std::size_t>(cfg_.threads_per_solve));
    const std::size_t extra = want > nslots ? want - nslots : 0;
    stealing_exec_ = std::make_unique<cpu::StealingExecutor>(extra);
    stealing_pool_ = std::make_unique<cpu::ThreadPool>(stealing_exec_.get());
  }
  // Packed batches co-schedule every slot's strip sessions on ONE
  // cooperative pool (threads_per_solve host threads total) instead of
  // giving each slot a private pool (concurrency x threads_per_solve
  // threads contending for the same cores).
  const bool coop = !stealing && cfg_.pack_solves &&
                    cfg_.threads_per_solve > 1 && nslots > 1;
  if (coop)
    coop_pool_ = std::make_unique<cpu::ThreadPool>(cfg_.threads_per_solve,
                                                   /*coop_strips=*/true);
  for (std::size_t s = 0; s < nslots; ++s) {
    pools_.push_back(!stealing && !coop && cfg_.threads_per_solve > 1
                         ? std::make_unique<cpu::ThreadPool>(
                               cfg_.threads_per_solve)
                         : nullptr);
  }
  workers_.reserve(nworkers);
  for (std::size_t s = 0; s < nworkers; ++s)
    workers_.emplace_back([this, s] { worker_loop(s); });
}

BatchEngine::~BatchEngine() {
  wait();  // drain so every returned future is fulfilled
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

std::size_t BatchEngine::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::size_t BatchEngine::lane_limit() const {
  if (cfg_.lane_pack == 0) return 1;
  if (cfg_.lane_pack < 0) return lanes::preferred_lane_width();
  return static_cast<std::size_t>(std::min<long long>(cfg_.lane_pack, 64));
}

bool BatchEngine::fits_locked(const Job& j, std::size_t extra) const {
  if (cfg_.memory_budget_bytes == 0) return true;
  // An idle engine force-admits: a request bigger than the whole budget
  // runs alone rather than starving.
  if (running_ == 0 && inflight_table_bytes_ == 0 && extra == 0) return true;
  return inflight_table_bytes_ + extra + j.est_table_bytes <=
         cfg_.memory_budget_bytes;
}

bool BatchEngine::has_admissible_locked() const {
  for (const Job* j : pending_)
    if (fits_locked(*j, 0)) return true;
  return false;
}

BatchEngine::Job* BatchEngine::pop_next_locked() {
  LDDP_DCHECK(!pending_.empty());
  const auto better = [&](const Job& a, const Job& b) {
    const double ka = sched_key(cfg_.sched, a.est, a.weight, a.index);
    const double kb = sched_key(cfg_.sched, b.est, b.weight, b.index);
    return ka < kb || (ka == kb && a.index < b.index);
  };
  std::size_t best_all = 0;
  std::size_t best_fit = pending_.size();
  for (std::size_t k = 0; k < pending_.size(); ++k) {
    if (k > 0 && better(*pending_[k], *pending_[best_all])) best_all = k;
    if (!fits_locked(*pending_[k], 0)) continue;
    if (best_fit == pending_.size() ||
        better(*pending_[k], *pending_[best_fit]))
      best_fit = k;
  }
  if (best_fit == pending_.size()) return nullptr;
  if (best_fit != best_all) ++budget_deferrals_;
  Job* job = pending_[best_fit];
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best_fit));
  return job;
}

/// Pops the scheduler's next job plus — when it is lane-groupable —
/// every same-class pending job (queue order) up to the lane cap, as one
/// cohort. Non-lane jobs come back as singletons; cohort-mates are only
/// taken while they fit the memory budget on top of the head.
std::vector<BatchEngine::Job*> BatchEngine::pop_cohort_locked() {
  std::vector<Job*> cohort;
  Job* const head = pop_next_locked();
  if (head == nullptr) return cohort;  // every pending job budget-deferred
  cohort.push_back(head);
  std::size_t extra = head->est_table_bytes;
  const std::size_t limit = lane_limit();
  if (head->lane_exec != nullptr && limit > 1) {
    for (std::size_t k = 0; k < pending_.size() && cohort.size() < limit;) {
      Job* const j = pending_[k];
      if (j->lane_exec != nullptr && j->lane_key == head->lane_key &&
          fits_locked(*j, extra)) {
        cohort.push_back(j);
        extra += j->est_table_bytes;
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        ++k;
      }
    }
  }
  for (const Job* j : cohort) inflight_table_bytes_ += j->est_table_bytes;
  peak_inflight_table_bytes_ =
      std::max(peak_inflight_table_bytes_, inflight_table_bytes_);
  return cohort;
}

void BatchEngine::run_job(Job& job, cpu::ThreadPool* pool) {
  // Per-solve quota view over the shared arenas: concurrent solves reuse
  // buffers across the batch but none can hoard the cache.
  sim::QuotaBufferPool quota(&buffers_, cfg_.buffer_quota_bytes);
  // job.run fulfils the promise on every path, but must not be trusted
  // with the engine's bookkeeping: if it ever leaks an exception the job
  // is marked failed and the slot still drains — a stuck `running_` count
  // would deadlock wait() forever.
  try {
    job.run(job, pool, &quota);
  } catch (...) {
    job.failed = true;
    job.outcome = chaos::RequestOutcome::kFailed;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job.done = true;
    --running_;
    LDDP_DCHECK(inflight_table_bytes_ >= job.est_table_bytes);
    inflight_table_bytes_ -= job.est_table_bytes;
  }
  cv_done_.notify_all();
  // A retired table may unblock a budget-deferred request.
  if (cfg_.memory_budget_bytes != 0) cv_work_.notify_all();
}

/// Executes one popped cohort: lane jobs (even singleton ones) go through
/// lane_exec as a unit; everything else is the per-solve run_job path.
void BatchEngine::run_cohort(const std::vector<Job*>& cohort,
                             cpu::ThreadPool* pool) {
  Job* const head = cohort.front();
  if (head->lane_exec == nullptr) {
    LDDP_DCHECK(cohort.size() == 1);
    run_job(*head, pool);
    return;
  }
  try {
    head->lane_exec(const_cast<Job**>(cohort.data()), cohort.size());
  } catch (...) {
    for (Job* j : cohort) {
      j->failed = true;
      j->outcome = chaos::RequestOutcome::kFailed;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Job* j : cohort) {
      j->done = true;
      LDDP_DCHECK(inflight_table_bytes_ >= j->est_table_bytes);
      inflight_table_bytes_ -= j->est_table_bytes;
    }
    running_ -= cohort.size();
  }
  cv_done_.notify_all();
  if (cfg_.memory_budget_bytes != 0) cv_work_.notify_all();
}

void BatchEngine::drain_one_locked(std::unique_lock<std::mutex>& lock) {
  const std::vector<Job*> cohort = pop_cohort_locked();
  if (cohort.empty()) {
    // Everything pending is budget-deferred behind another inline drain:
    // wait for a table to retire, then let the caller's loop retry.
    cv_done_.wait(lock,
                  [&] { return running_ == 0 || has_admissible_locked(); });
    return;
  }
  running_ += cohort.size();
  lock.unlock();
  run_cohort(cohort, slot_pool(0));
  lock.lock();
  cv_space_.notify_all();
}

bool BatchEngine::admit(std::unique_ptr<Job> job) {
  std::unique_lock<std::mutex> lock(mu_);
  while (pending_.size() >= cfg_.queue_capacity) {
    if (cfg_.admission == BatchAdmission::kReject) return false;
    if (workers_.empty()) {
      // No executor threads: the blocked submitter makes room itself.
      drain_one_locked(lock);
    } else {
      cv_space_.wait(lock,
                     [&] { return pending_.size() < cfg_.queue_capacity; });
    }
  }
  job->index = jobs_.size();
  pending_.push_back(job.get());
  jobs_.push_back(std::move(job));
  lock.unlock();
  cv_work_.notify_one();
  return true;
}

void BatchEngine::worker_loop(std::size_t slot) {
  for (;;) {
    std::vector<Job*> cohort;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return stop_ || (!pending_.empty() && has_admissible_locked());
      });
      if (pending_.empty()) return;  // stop_ and nothing left
      cohort = pop_cohort_locked();
      if (cohort.empty()) continue;  // raced another worker for the slot
      running_ += cohort.size();
    }
    cv_space_.notify_all();
    run_cohort(cohort, slot_pool(slot));
  }
}

BatchReport BatchEngine::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  if (workers_.empty()) {
    while (!pending_.empty()) drain_one_locked(lock);
  }
  cv_done_.wait(lock, [&] { return pending_.empty() && running_ == 0; });
  const std::vector<std::unique_ptr<Job>> jobs = std::move(jobs_);
  jobs_.clear();
  // Per-batch memory counters reset with the job list.
  const std::size_t peak_tables = peak_inflight_table_bytes_;
  const std::size_t deferrals = budget_deferrals_;
  peak_inflight_table_bytes_ = 0;
  budget_deferrals_ = 0;
  lock.unlock();
  BatchReport report = build_report(jobs);
  report.memory_budget_bytes = cfg_.memory_budget_bytes;
  report.peak_inflight_table_bytes = peak_tables;
  report.budget_deferrals = deferrals;
  report.arena = buffers_.stats();
  return report;
}

BatchReport BatchEngine::build_report(
    const std::vector<std::unique_ptr<Job>>& jobs) const {
  BatchReport report;
  report.solves = jobs.size();
  report.items.resize(jobs.size());
  if (jobs.empty()) return report;

  // Admission order under the policy — the queue order a clairvoyant
  // scheduler (all requests arrive at t = 0) would drain in.
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return sched_key(cfg_.sched, jobs[a]->est,
                                      jobs[a]->weight, a) <
                            sched_key(cfg_.sched, jobs[b]->est,
                                      jobs[b]->weight, b);
                   });

  // Replay every recorded schedule onto one shared platform with
  // `concurrency` in-flight slots: a queued solve is released when the
  // merge completes an in-flight one.
  sim::Platform platform(cfg_.platform);
  sim::TimelineMerger merger(platform.timeline());
  merger.enable_packing(cfg_.platform.gpu);
  struct Dispatched {
    std::size_t job;       // index into jobs
    double release;
    sim::OpId release_dep;
  };
  std::vector<Dispatched> by_rank;  // merger rank -> dispatch info
  by_rank.reserve(jobs.size());
  std::size_t next_in_queue = 0;
  std::size_t completions = 0;

  auto dispatch = [&](double release, sim::OpId release_dep) {
    // Solves that recorded nothing (a failed solve) occupy their slot for
    // zero simulated time: complete them on the spot and release the next
    // queued request at the same instant.
    while (next_in_queue < order.size()) {
      const std::size_t j = order[next_in_queue];
      BatchItemStats& item = report.items[j];
      item.dispatch_rank = next_in_queue;
      item.sim_dispatch = release;
      ++next_in_queue;
      // Retry backoff delays the request's own ops past its slot opening
      // (the slot itself is held — backoff is service time, not queueing).
      const double start = release + jobs[j]->backoff_seconds;
      if (jobs[j]->recorded.op_count() == 0) {
        item.sim_start = item.sim_end = start;
        item.completion_rank = completions++;
        continue;
      }
      const std::size_t rank = merger.add(jobs[j]->recorded, start,
                                          release_dep, jobs[j]->packable);
      LDDP_DCHECK(rank == by_rank.size());
      (void)rank;
      by_rank.push_back(Dispatched{j, release, release_dep});
      return;
    }
  };

  const std::size_t initial =
      std::min<std::size_t>(cfg_.concurrency, order.size());
  for (std::size_t s = 0; s < initial && next_in_queue < order.size(); ++s)
    dispatch(0.0, sim::kNoOp);

  while (merger.busy()) {
    const std::size_t finished = merger.step();
    if (finished == sim::TimelineMerger::kNone) continue;
    const std::size_t j = by_rank[finished].job;
    BatchItemStats& item = report.items[j];
    item.sim_start = merger.job_start(finished);
    item.sim_end = merger.job_end(finished);
    item.completion_rank = completions++;
    dispatch(merger.job_end(finished), merger.job_last_op(finished));
  }
  LDDP_DCHECK(next_in_queue == order.size());
  LDDP_DCHECK(completions == jobs.size());

  std::vector<double> latencies;
  latencies.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    BatchItemStats& item = report.items[j];
    item.index = j;
    item.solve = jobs[j]->stats;
    item.est_seconds = jobs[j]->est;
    item.weight = jobs[j]->weight;
    item.failed = jobs[j]->failed;
    item.outcome = jobs[j]->outcome;
    item.retries = jobs[j]->retries;
    item.backoff_seconds = jobs[j]->backoff_seconds;
    if (jobs[j]->degraded != nullptr) item.degraded = jobs[j]->degraded;
    item.sim_latency = item.sim_end;  // every request arrives at t = 0
    latencies.push_back(item.sim_latency);
    report.serial_sim_seconds += item.solve.sim_seconds;
    if (jobs[j]->batch_kernels) ++report.batch_kernel_solves;
    report.retry_attempts += jobs[j]->retries;
    switch (jobs[j]->outcome) {
      case chaos::RequestOutcome::kOk:
        ++report.ok_solves;
        break;
      case chaos::RequestOutcome::kRetried:
        ++report.retried_solves;
        break;
      case chaos::RequestOutcome::kDegraded:
        ++report.degraded_solves;
        break;
      case chaos::RequestOutcome::kDeadlineExceeded:
        ++report.deadline_solves;
        break;
      case chaos::RequestOutcome::kCancelled:
        ++report.cancelled_solves;
        break;
      case chaos::RequestOutcome::kFailed:
        ++report.failed_solves;
        break;
    }
  }
  // Lane-packing counters: heads carry their cohort's lockstep tally.
  std::size_t lane_lockstep = 0, lane_total = 0;
  for (const auto& job : jobs) {
    if (!job->lane_key.empty()) ++report.lane_eligible_solves;
    if (job->lane_cohort >= 2) ++report.lane_packed_solves;
    if (job->lane_head) {
      if (job->lane_cohort >= 2) ++report.lane_cohorts;
      lane_lockstep += job->lane_lockstep_cells;
      lane_total += job->lane_total_cells;
    }
  }
  if (lane_total > 0)
    report.lane_occupancy =
        static_cast<double>(lane_lockstep) / static_cast<double>(lane_total);
  if (report.lane_eligible_solves > 0)
    report.lane_hit_rate =
        static_cast<double>(report.lane_packed_solves) /
        static_cast<double>(report.lane_eligible_solves);
  report.sim_makespan = platform.elapsed();
  if (report.sim_makespan > 0.0) {
    report.solves_per_sec =
        static_cast<double>(jobs.size()) / report.sim_makespan;
    report.speedup = report.serial_sim_seconds / report.sim_makespan;
  }
  if (report.serial_sim_seconds > 0.0) {
    report.serial_solves_per_sec =
        static_cast<double>(jobs.size()) / report.serial_sim_seconds;
  }
  report.packs = merger.pack_count();
  report.packed_ops = merger.packed_ops();
  report.pack_saved_seconds = merger.pack_saved_seconds();
  report.tuner_lookups = tuner_cache_.lookups();
  report.tuner_hits = tuner_cache_.hits();
  report.tuner_hit_rate = tuner_cache_.hit_rate();
  report.p50_latency = percentile(latencies, 0.50);
  report.p99_latency = percentile(latencies, 0.99);
  if (!cfg_.trace_path.empty())
    platform.timeline().export_chrome_trace(cfg_.trace_path);
  return report;
}

}  // namespace lddp
