// Pattern classification — the paper's Table I and Table II, plus the
// symmetry reduction of Section III.
#pragma once

#include <string>

#include "core/contributing_set.h"

namespace lddp {

/// The six wavefront patterns of Figure 2.
enum class Pattern {
  kAntiDiagonal,       ///< fronts are anti-diagonals i+j
  kHorizontal,         ///< fronts are rows
  kInvertedL,          ///< fronts are shells min(i,j)
  kKnightMove,         ///< fronts are 2i+j lines
  kVertical,           ///< fronts are columns (symmetric to Horizontal)
  kMirroredInvertedL,  ///< shells min(i, cols-1-j) (symmetric to InvertedL)
};

/// CPU<->GPU boundary traffic required by the heterogeneous split
/// (Table II). One-way transfers use the pipelined stream scheme; two-way
/// transfers use pinned memory (Section IV-C).
enum class TransferNeed {
  kNone,    ///< contributing set {N} (or {W} for Vertical): no boundary deps
  kOneWay,  ///< CPU -> GPU only
  kTwoWay,  ///< both directions, every iteration
};

/// Maps a contributing set to its pattern — the paper's Table I, all 15
/// rows. Logic: W together with N (or with nothing to its right) serializes
/// rows into anti-diagonals or columns; W with NE forces the knight-move
/// spacing; row-only dependencies give Horizontal; a lone NW (resp. NE)
/// gives the Inverted-L (resp. mirrored) shells.
Pattern classify(ContributingSet deps);

/// Symmetry reduction (Section III): Vertical is Horizontal transposed and
/// MirroredInvertedL is InvertedL mirrored, leaving four canonical patterns.
Pattern canonical(Pattern p);

/// True for the two patterns that are handled "by appealing to symmetry".
bool is_symmetric_alias(Pattern p);

/// Table II: transfer needs of the heterogeneous execution per contributing
/// set. {N} alone ({W} alone for Vertical) needs no transfers at all; sets
/// whose *only* cross-boundary dependency points from CPU region to GPU
/// region are one-way; sets reaching both ways (NE together with W or NW on
/// a column split) are two-way.
TransferNeed transfer_need(ContributingSet deps);

/// Horizontal pattern sub-case (Section III-B): case-1 sets need at most
/// one-way transfers; case-2 sets (containing NE alongside NW) need two-way.
/// Only meaningful when classify(deps) is Horizontal/Vertical.
bool is_horizontal_case2(ContributingSet deps);

std::string to_string(Pattern p);
std::string to_string(TransferNeed t);

}  // namespace lddp
