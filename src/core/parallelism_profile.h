// Parallelism profiles — "degree of parallelism v/s time plot" (Section I).
// The paper categorizes LDDP-Plus problems by these profiles: growing-then-
// shrinking (anti-diagonal, knight-move), constant (horizontal, vertical),
// shrinking (inverted-L). This module computes the profile for any pattern
// and table shape, and classifies its shape — the basis for which
// heterogeneous phase structure applies.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/pattern.h"
#include "tables/layout.h"

namespace lddp {

/// Front sizes in execution order: profile[f] = cells computable in
/// parallel at iteration f.
std::vector<std::size_t> parallelism_profile(Pattern pattern,
                                             std::size_t rows,
                                             std::size_t cols);

/// The three qualitative shapes the paper's execution strategies key on.
enum class ProfileShape {
  kConstant,        ///< horizontal / vertical: one phase, split every front
  kRiseAndFall,     ///< anti-diagonal / knight-move: t_switch at both ends
  kMonotoneFalling, ///< inverted-L: t_switch at the tail only
};

ProfileShape profile_shape(Pattern pattern);

/// Classifies a measured profile (useful for validating custom layouts):
/// tolerates plateaus; a profile must be non-trivial to be rise-and-fall.
ProfileShape classify_profile(const std::vector<std::size_t>& profile);

std::string to_string(ProfileShape s);

}  // namespace lddp
