// Empirical parameter tuning (Section V-A, Figure 7).
//
// "To know the optimal value of t_switch, we fix t_share to 0 and we run
//  the algorithm for different values of t_switch. ... this process
//  generates a concave curve. The point corresponding to the minimum time
//  on the curve indicates the optimal value. Now, we fix the value of
//  t_switch to its optimal value, and we run the algorithm for different
//  values of t_share."
//
// tune() reproduces that two-pass sweep against simulated time and returns
// both the chosen parameters and the sampled curves (the raw material of
// Fig 7, re-plotted by bench_fig7_tswitch).
//
// The paper's curves are concave (valley-shaped), which the sweep
// exploits twice: the dense linear scan stops early once the valley is
// bracketed (two samples past the running minimum), and an integer
// golden-section refinement then narrows the bracket around the coarse
// argmin — so the optimum is located to unit precision with far fewer
// solves than a fine dense sweep. A third sweep picks the tile side of
// the tile-granular execution layer (0 = untiled baseline, then powers of
// two) with the tuned t_switch / t_share fixed.
#pragma once

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "core/framework.h"
#include "core/strategies/heuristics.h"
#include "util/stats.h"

namespace lddp {

/// Sampled curves and the picked optimum of the sweeps. Curves are sorted
/// by parameter value (the golden-section refinement fills in points near
/// the optimum, so spacing is not uniform).
struct TuneResult {
  HeteroParams best;
  long long best_tile = 0;               ///< 0 = untiled is (or ties) best
  std::vector<long long> switch_values;  ///< sampled t_switch (t_share = 0)
  std::vector<double> switch_seconds;    ///< simulated time per sample
  std::vector<long long> share_values;   ///< sampled t_share (best t_switch)
  std::vector<double> share_seconds;
  std::vector<long long> tile_values;    ///< sampled tile (best params)
  std::vector<double> tile_seconds;
};

namespace detail {

/// One concave sweep over [0, max_value]: dense scan with early exit once
/// the valley is bracketed, then integer golden-section refinement of the
/// bracket. Every evaluation is cached; the sorted (value, seconds) samples
/// are appended to the output curves. Returns the argmin value.
template <typename Eval>
long long concave_sweep(long long max_value, int samples, Eval&& eval,
                        std::vector<long long>* values,
                        std::vector<double>* seconds) {
  std::map<long long, double> cache;
  auto measure = [&](long long v) {
    const auto it = cache.find(v);
    if (it != cache.end()) return it->second;
    const double t = eval(v);
    cache.emplace(v, t);
    return t;
  };

  // Coarse linear scan; on a valley-shaped curve, two samples measured
  // after the running minimum bracket the optimum, so stop there.
  long long best_v = 0;
  double best_t = measure(0);
  int past_best = 0;
  for (int k = 1; k < samples; ++k) {
    const long long v = max_value * static_cast<long long>(k) /
                        static_cast<long long>(samples - 1);
    if (cache.count(v)) continue;
    const double t = measure(v);
    if (t < best_t) {
      best_t = t;
      best_v = v;
      past_best = 0;
    } else if (++past_best >= 2) {
      break;
    }
  }

  // Golden-section refinement inside the bracket [previous sample, next
  // sample] around the coarse argmin.
  long long lo = best_v, hi = best_v;
  {
    const auto it = cache.find(best_v);
    if (it != cache.begin()) lo = std::prev(it)->first;
    if (std::next(it) != cache.end()) hi = std::next(it)->first;
  }
  constexpr double kInvPhi = 0.6180339887498949;
  long long a = lo, b = hi;
  while (b - a > 2) {
    long long x1 = b - std::llround(static_cast<double>(b - a) * kInvPhi);
    long long x2 = a + std::llround(static_cast<double>(b - a) * kInvPhi);
    x1 = std::clamp(x1, a + 1, b - 1);
    x2 = std::clamp(x2, a + 1, b - 1);
    if (x1 > x2) std::swap(x1, x2);
    if (x1 == x2) (x2 + 1 < b) ? ++x2 : --x1;
    if (measure(x1) <= measure(x2))
      b = x2;
    else
      a = x1;
  }
  for (long long v = a; v <= b; ++v) measure(v);

  for (const auto& [v, t] : cache) {
    values->push_back(v);
    seconds->push_back(t);
  }
  return (*values)[argmin(*seconds)];
}

}  // namespace detail

/// Sweeps t_switch, then t_share, then the tile side, as in Section V-A.
/// `samples_per_sweep` bounds the coarse linear scan of the first two
/// sweeps; the golden-section refinement locates each optimum to unit
/// precision regardless.
template <LddpProblem P>
TuneResult tune(const P& p, RunConfig cfg, int samples_per_sweep = 17) {
  LDDP_CHECK(samples_per_sweep >= 2);
  cfg.mode = Mode::kHeterogeneous;
  const Pattern canon = canonical(classify(p.deps()));

  long long switch_max = 0, share_max = 0;
  detail::hetero_param_ranges(canon, p.rows(), p.cols(), &switch_max,
                              &share_max);

  auto simulate = [&](HeteroParams params, long long tile) {
    RunConfig c = cfg;
    c.hetero = params;
    c.tile = tile;
    return solve(p, c).stats.sim_seconds;
  };

  TuneResult out;
  const long long best_switch = detail::concave_sweep(
      switch_max, samples_per_sweep,
      [&](long long v) { return simulate(HeteroParams{v, 0}, cfg.tile); },
      &out.switch_values, &out.switch_seconds);
  const long long best_share = detail::concave_sweep(
      share_max, samples_per_sweep,
      [&](long long v) {
        return simulate(HeteroParams{best_switch, v}, cfg.tile);
      },
      &out.share_values, &out.share_seconds);
  out.best = HeteroParams{best_switch, best_share};

  // Third sweep: the tile side — 0 (untiled baseline) then powers of two
  // up to the table. Log-spaced, so no refinement is needed.
  const long long tile_max =
      static_cast<long long>(std::min(p.rows(), p.cols()));
  for (long long tile = 0; tile <= tile_max;
       tile = (tile == 0 ? 4 : tile * 2)) {
    out.tile_values.push_back(tile);
    out.tile_seconds.push_back(simulate(out.best, tile));
  }
  out.best_tile = out.tile_values[argmin(out.tile_seconds)];
  return out;
}

}  // namespace lddp
