// Empirical parameter tuning (Section V-A, Figure 7).
//
// "To know the optimal value of t_switch, we fix t_share to 0 and we run
//  the algorithm for different values of t_switch. ... this process
//  generates a concave curve. The point corresponding to the minimum time
//  on the curve indicates the optimal value. Now, we fix the value of
//  t_switch to its optimal value, and we run the algorithm for different
//  values of t_share."
//
// tune() reproduces that two-pass sweep against simulated time and returns
// both the chosen parameters and the sampled curves (the raw material of
// Fig 7, re-plotted by bench_fig7_tswitch).
#pragma once

#include <vector>

#include "core/framework.h"
#include "core/strategies/heuristics.h"
#include "util/stats.h"

namespace lddp {

/// Sampled curves and the picked optimum of the two sweeps.
struct TuneResult {
  HeteroParams best;
  std::vector<long long> switch_values;  ///< sampled t_switch (t_share = 0)
  std::vector<double> switch_seconds;    ///< simulated time per sample
  std::vector<long long> share_values;   ///< sampled t_share (best t_switch)
  std::vector<double> share_seconds;
};

/// Sweeps t_switch then t_share as in Section V-A. `samples_per_sweep`
/// points are spread evenly over each parameter's valid range.
template <LddpProblem P>
TuneResult tune(const P& p, RunConfig cfg, int samples_per_sweep = 17) {
  LDDP_CHECK(samples_per_sweep >= 2);
  cfg.mode = Mode::kHeterogeneous;
  const Pattern canon = canonical(classify(p.deps()));

  long long switch_max = 0, share_max = 0;
  detail::hetero_param_ranges(canon, p.rows(), p.cols(), &switch_max,
                              &share_max);

  auto sweep = [&](long long max_value, auto make_params,
                   std::vector<long long>* values,
                   std::vector<double>* seconds) -> long long {
    for (int k = 0; k < samples_per_sweep; ++k) {
      const long long v =
          max_value * static_cast<long long>(k) /
          static_cast<long long>(samples_per_sweep - 1);
      if (!values->empty() && values->back() == v) continue;
      cfg.hetero = make_params(v);
      SolveResult<P> r = solve(p, cfg);
      values->push_back(v);
      seconds->push_back(r.stats.sim_seconds);
    }
    return (*values)[argmin(*seconds)];
  };

  TuneResult out;
  const long long best_switch = sweep(
      switch_max,
      [](long long v) { return HeteroParams{v, 0}; },
      &out.switch_values, &out.switch_seconds);
  const long long best_share = sweep(
      share_max,
      [best_switch](long long v) { return HeteroParams{best_switch, v}; },
      &out.share_values, &out.share_seconds);
  out.best = HeteroParams{best_switch, best_share};
  return out;
}

}  // namespace lddp
