// Empirical parameter tuning (Section V-A, Figure 7).
//
// "To know the optimal value of t_switch, we fix t_share to 0 and we run
//  the algorithm for different values of t_switch. ... this process
//  generates a concave curve. The point corresponding to the minimum time
//  on the curve indicates the optimal value. Now, we fix the value of
//  t_switch to its optimal value, and we run the algorithm for different
//  values of t_share."
//
// tune() reproduces that two-pass sweep against simulated time and returns
// both the chosen parameters and the sampled curves (the raw material of
// Fig 7, re-plotted by bench_fig7_tswitch).
//
// The paper's curves are concave (valley-shaped), which the sweep
// exploits twice: the dense linear scan stops early once the valley is
// bracketed (two samples past the running minimum), and an integer
// golden-section refinement then narrows the bracket around the coarse
// argmin — so the optimum is located to unit precision with far fewer
// solves than a fine dense sweep. A third sweep picks the tile side of
// the tile-granular execution layer (0 = untiled baseline, then powers of
// two) with the tuned t_switch / t_share fixed.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <typeinfo>
#include <vector>

#include "core/framework.h"
#include "core/strategies/heuristics.h"
#include "util/stats.h"

namespace lddp {

/// Sampled curves and the picked optimum of the sweeps. Curves are sorted
/// by parameter value (the golden-section refinement fills in points near
/// the optimum, so spacing is not uniform).
struct TuneResult {
  HeteroParams best;
  long long best_tile = 0;               ///< 0 = untiled is (or ties) best
  std::vector<long long> switch_values;  ///< sampled t_switch (t_share = 0)
  std::vector<double> switch_seconds;    ///< simulated time per sample
  std::vector<long long> share_values;   ///< sampled t_share (best t_switch)
  std::vector<double> share_seconds;
  std::vector<long long> tile_values;    ///< sampled tile (best params)
  std::vector<double> tile_seconds;
};

namespace detail {

/// One concave sweep over [0, max_value]: dense scan with early exit once
/// the valley is bracketed, then integer golden-section refinement of the
/// bracket. Every evaluation is cached; the sorted (value, seconds) samples
/// are appended to the output curves. Returns the argmin value.
template <typename Eval>
long long concave_sweep(long long max_value, int samples, Eval&& eval,
                        std::vector<long long>* values,
                        std::vector<double>* seconds) {
  std::map<long long, double> cache;
  auto measure = [&](long long v) {
    const auto it = cache.find(v);
    if (it != cache.end()) return it->second;
    const double t = eval(v);
    cache.emplace(v, t);
    return t;
  };

  // Coarse linear scan; on a valley-shaped curve, two samples measured
  // after the running minimum bracket the optimum, so stop there.
  long long best_v = 0;
  double best_t = measure(0);
  int past_best = 0;
  for (int k = 1; k < samples; ++k) {
    const long long v = max_value * static_cast<long long>(k) /
                        static_cast<long long>(samples - 1);
    if (cache.count(v)) continue;
    const double t = measure(v);
    if (t < best_t) {
      best_t = t;
      best_v = v;
      past_best = 0;
    } else if (++past_best >= 2) {
      break;
    }
  }

  // Golden-section refinement inside the bracket [previous sample, next
  // sample] around the coarse argmin.
  long long lo = best_v, hi = best_v;
  {
    const auto it = cache.find(best_v);
    if (it != cache.begin()) lo = std::prev(it)->first;
    if (std::next(it) != cache.end()) hi = std::next(it)->first;
  }
  constexpr double kInvPhi = 0.6180339887498949;
  long long a = lo, b = hi;
  while (b - a > 2) {
    long long x1 = b - std::llround(static_cast<double>(b - a) * kInvPhi);
    long long x2 = a + std::llround(static_cast<double>(b - a) * kInvPhi);
    x1 = std::clamp(x1, a + 1, b - 1);
    x2 = std::clamp(x2, a + 1, b - 1);
    if (x1 > x2) std::swap(x1, x2);
    if (x1 == x2) (x2 + 1 < b) ? ++x2 : --x1;
    if (measure(x1) <= measure(x2))
      b = x2;
    else
      a = x1;
  }
  for (long long v = a; v <= b; ++v) measure(v);

  for (const auto& [v, t] : cache) {
    values->push_back(v);
    seconds->push_back(t);
  }
  return (*values)[argmin(*seconds)];
}

}  // namespace detail

/// Sweeps t_switch, then t_share, then the tile side, as in Section V-A.
/// `samples_per_sweep` bounds the coarse linear scan of the first two
/// sweeps; the golden-section refinement locates each optimum to unit
/// precision regardless.
template <LddpProblem P>
TuneResult tune(const P& p, RunConfig cfg, int samples_per_sweep = 17) {
  LDDP_CHECK(samples_per_sweep >= 2);
  cfg.mode = Mode::kHeterogeneous;
  const Pattern canon = canonical(classify(p.deps()));

  long long switch_max = 0, share_max = 0;
  detail::hetero_param_ranges(canon, p.rows(), p.cols(), &switch_max,
                              &share_max);

  auto simulate = [&](HeteroParams params, long long tile) {
    RunConfig c = cfg;
    c.hetero = params;
    c.tile = tile;
    return solve(p, c).stats.sim_seconds;
  };

  TuneResult out;
  const long long best_switch = detail::concave_sweep(
      switch_max, samples_per_sweep,
      [&](long long v) { return simulate(HeteroParams{v, 0}, cfg.tile); },
      &out.switch_values, &out.switch_seconds);
  const long long best_share = detail::concave_sweep(
      share_max, samples_per_sweep,
      [&](long long v) {
        return simulate(HeteroParams{best_switch, v}, cfg.tile);
      },
      &out.share_values, &out.share_seconds);
  out.best = HeteroParams{best_switch, best_share};

  // Third sweep: the tile side — 0 (untiled baseline) then powers of two
  // up to the table. Log-spaced, so no refinement is needed.
  const long long tile_max =
      static_cast<long long>(std::min(p.rows(), p.cols()));
  for (long long tile = 0; tile <= tile_max;
       tile = (tile == 0 ? 4 : tile * 2)) {
    out.tile_values.push_back(tile);
    out.tile_seconds.push_back(simulate(out.best, tile));
  }
  out.best_tile = out.tile_values[argmin(out.tile_seconds)];
  return out;
}

/// Equivalence class of a solve for cross-solve machinery: the inputs a
/// swept optimum — or a lane-packable cohort — actually depends on.
/// (problem kind, contributing set, floor-log2 shape bucket, resolved
/// mode, fused pricing, tile-auto). Shared by the TunerCache (class →
/// tuned parameters) and the batch engine's lane packing (same class +
/// same bucket → solves can run in SIMD lockstep; sides within one
/// power-of-two bucket pack as a ragged cohort).
struct SolveClassKey {
  std::string kind;  ///< typeid name of the problem type
  std::uint8_t deps = 0;
  int row_bucket = 0, col_bucket = 0;
  Mode mode = Mode::kAuto;
  bool fused = true;
  bool tile_auto = false;

  bool operator<(const SolveClassKey& o) const {
    return std::tie(kind, deps, row_bucket, col_bucket, mode, fused,
                    tile_auto) < std::tie(o.kind, o.deps, o.row_bucket,
                                          o.col_bucket, o.mode, o.fused,
                                          o.tile_auto);
  }
  bool operator==(const SolveClassKey& o) const {
    return !(*this < o) && !(o < *this);
  }

  /// Flat string form (for use as a grouping token where a string field
  /// is more convenient than the struct).
  std::string token() const {
    return kind + '|' + std::to_string(static_cast<int>(deps)) + '|' +
           std::to_string(row_bucket) + 'x' + std::to_string(col_bucket) +
           '|' + std::to_string(static_cast<int>(mode)) + '|' +
           (fused ? 'f' : '-') + (tile_auto ? 't' : '-');
  }
};

namespace detail {

inline int floor_log2(std::size_t v) {
  int b = 0;
  while (v >>= 1) ++b;
  return b;
}

}  // namespace detail

template <LddpProblem P>
SolveClassKey make_solve_class_key(const P& p, const RunConfig& cfg) {
  SolveClassKey k;
  k.kind = typeid(P).name();
  k.deps = p.deps().mask();
  k.row_bucket = detail::floor_log2(p.rows());
  k.col_bucket = detail::floor_log2(p.cols());
  k.mode = detail::resolve_auto(cfg.mode, p.rows() * p.cols());
  k.fused = cfg.fused_launches;
  k.tile_auto = cfg.tile == -1;
  return k;
}

/// Cross-solve tuning cache for batch workloads: requests arriving with
/// auto parameters (t_switch / t_share unset, tile = -1) trigger one
/// tune() sweep per equivalence class; every later request in the class
/// reuses the cached optimum instead of re-sweeping. Classes are keyed by
/// (problem kind, contributing set, floor-log2 shape bucket, resolved
/// mode, fused pricing) — the inputs the swept optimum actually depends
/// on; table sides within one power-of-two bucket share an optimum to
/// within sweep resolution. Thread-safe: lookups take a mutex, sweeps run
/// outside it so co-resident solves keep executing; concurrent misses of
/// one key may sweep twice and the first insert wins (the value is
/// identical either way — sweeps are pure functions of the cost model).
class TunerCache {
 public:
  struct Entry {
    HeteroParams params;
    long long tile = 0;
  };

  /// Coarse samples per sweep handed to tune(); batch requests favour a
  /// slightly cheaper sweep than the solo default of 17.
  int samples_per_sweep = 9;

  /// Returns the class optimum for `p` under `cfg`, sweeping on first
  /// contact. `hit`, when non-null, reports whether the cache answered.
  template <LddpProblem P>
  Entry lookup_or_tune(const P& p, const RunConfig& cfg,
                       bool* hit = nullptr) {
    const SolveClassKey key = make_solve_class_key(p, cfg);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++lookups_;
      const auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++hits_;
        if (hit) *hit = true;
        return it->second;
      }
    }
    RunConfig sweep_cfg = cfg;
    sweep_cfg.record_timeline = nullptr;  // sweeps are not batch jobs
    sweep_cfg.trace_path.clear();
    sweep_cfg.hetero = HeteroParams{};
    const TuneResult tuned = tune(p, sweep_cfg, samples_per_sweep);
    Entry entry{tuned.best, tuned.best_tile};
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto [it, inserted] = cache_.emplace(key, entry);
      if (!inserted) entry = it->second;
    }
    if (hit) *hit = false;
    return entry;
  }

  std::size_t lookups() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lookups_;
  }
  std::size_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  std::size_t entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }
  double hit_rate() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lookups_ == 0
               ? 0.0
               : static_cast<double>(hits_) / static_cast<double>(lookups_);
  }

 private:
  mutable std::mutex mu_;
  std::map<SolveClassKey, Entry> cache_;
  std::size_t lookups_ = 0, hits_ = 0;
};

}  // namespace lddp
