// Lane-cohort driver: executes a cohort of same-class solves in SIMD
// lockstep, one lane per solve.
//
// The batch engine groups co-admitted requests whose SolveClassKey
// matches (same problem kind, contributing set, resolved mode and
// power-of-two shape bucket) and hands them here as one unit. The driver
// interleaves the cohort's tables lane-major (tables/lane_grid.h, two
// rolling rows) and sweeps the shared region — rows [1, min_rows),
// interior columns — with the lane-generic row kernels of
// core/lane_kernels.h, so every front load/store is one unit-stride
// vector across solves, even at front length 1. A row-major sweep
// respects every LDDP-Plus contributing set (all four representative
// cells lie up or left), so lockstep rows are valid for all patterns.
//
// Ragged cohorts (sides differing within one bucket): each row finishes
// with a per-lane column remainder — required before the next row when
// the set includes NE, whose edge cell reads the remainder's first
// column — and lanes taller than min_rows retire from lockstep and
// finish with the per-solve row sweep. Padding lanes (cohort size not a
// vector multiple) replicate lane 0 and are discarded. Cohorts of
// problems without LaneTraits, or too small/narrow to pay for
// interleaving, take the per-solve sweep for every lane.
//
// Every cell is produced either by the scalar reference recurrence
// (edges, remainders, retired lanes) or by a lane kernel whose exact
// int32 ops mirror it — results are bit-identical to solo solves.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <type_traits>
#include <vector>

#include "core/front_runner.h"
#include "core/lane_kernels.h"
#include "core/problem.h"
#include "core/strategies/common.h"
#include "tables/frontier.h"
#include "tables/grid.h"
#include "tables/lane_grid.h"
#include "util/aligned.h"

namespace lddp::detail {

/// What lane execution did for one cohort (reported via BatchReport).
struct LaneExecStats {
  std::size_t lanes = 0;           ///< real solves in the cohort
  std::size_t width = 0;           ///< interleave width (0 = no lockstep)
  std::size_t lockstep_cells = 0;  ///< cells computed in vector lockstep
  std::size_t total_cells = 0;     ///< cells across the whole cohort
};

/// Per-solve row sweep of rows [r0, rows) — the serial reference fill of
/// solve_cpu_serial, reused for retired lanes and non-lockstep cohorts.
template <LddpProblem P>
void lane_fill_rows(const P& p, Grid<typename P::Value>& g, std::size_t r0,
                    bool batch) {
  using V = typename P::Value;
  const std::size_t m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  V* const data = g.data();
  for (std::size_t i = r0; i < p.rows(); ++i) {
    const V* prev = i > 0 ? data + (i - 1) * m : nullptr;
    run_row(p, deps, bound, i, 0, m, m, prev, data + i * m, batch);
  }
}

/// Solves `probs` as one lane cohort; returns one table per problem, in
/// order, bit-identical to per-solve serial scans.
///
/// `poll`, when set, is the cohort's lifecycle hook: called with the row
/// index at the start of every lockstep row (and with the lane index
/// before each whole-lane fill on the non-lockstep path). A throwing poll
/// — an injected lane-kernel fault, an observed cancellation — aborts the
/// cohort cleanly; the batch engine then degrades to per-lane solo
/// execution, which runs poll-free as the guaranteed reference rung.
template <LddpProblem P>
std::vector<Grid<typename P::Value>> solve_lane_cohort(
    const std::vector<const P*>& probs, bool batch_kernels,
    LaneExecStats* stats_out,
    const std::function<void(std::size_t)>& poll = {}) {
  using V = typename P::Value;
  using Traits = lanes::LaneTraits<P>;
  const std::size_t S = probs.size();
  LDDP_CHECK(S > 0);

  std::vector<Grid<V>> tables;
  tables.reserve(S);
  std::size_t min_rows = std::numeric_limits<std::size_t>::max();
  std::size_t min_cols = min_rows;
  LaneExecStats st;
  st.lanes = S;
  for (const P* p : probs) {
    tables.push_back(Grid<V>::uninitialized(p->rows(), p->cols()));
    min_rows = std::min(min_rows, p->rows());
    min_cols = std::min(min_cols, p->cols());
    st.total_cells += p->rows() * p->cols();
  }

  bool lockstep = false;
  if constexpr (Traits::enabled)
    lockstep = batch_kernels && S >= 2 && min_rows >= 2 && min_cols >= 4;
  if (!lockstep) {
    for (std::size_t s = 0; s < S; ++s) {
      if (poll) poll(s);
      lane_fill_rows(*probs[s], tables[s], 0, batch_kernels);
    }
    if (stats_out) *stats_out = st;
    return tables;
  }

  if constexpr (Traits::enabled) {
    const ContributingSet deps = probs[0]->deps();
    const V bound = probs[0]->boundary();
    // The last shared column of an NE problem reads prev-row column
    // min_cols — outside the interleaved block — so it stays scalar.
    const std::size_t jK = deps.has_ne() ? min_cols - 1 : min_cols;
    const std::size_t width = (S + 3) / 4 * 4;

    // Padding lanes alias lane 0: in-bounds inputs, discarded outputs.
    std::vector<const P*> lp(width, probs[0]);
    std::copy(probs.begin(), probs.end(), lp.begin());

    LaneGrid<V> lrows(2, min_cols, width);  // rolling: row(i & 1)
    auto state = Traits::make(lp.data(), width, min_rows, min_cols);
    const lanes::ScatterFn scatter = lanes::lane_scatter(width);
    std::vector<V*> grows(S);  // per-lane table row bases, set per row

    // Row 0 per lane (base cases live in compute), then interleave the
    // shared columns as the first lockstep predecessor row.
    for (std::size_t s = 0; s < S; ++s) {
      const P& p = *probs[s];
      run_row(p, deps, bound, 0, 0, p.cols(), p.cols(), nullptr,
              tables[s].data(), batch_kernels);
    }
    V* const row0 = lrows.row(0);
    for (std::size_t j = 0; j < min_cols; ++j)
      for (std::size_t s = 0; s < width; ++s)
        row0[j * width + s] = tables[s < S ? s : 0].at(0, j);

    for (std::size_t i = 1; i < min_rows; ++i) {
      if (poll) poll(i);
      const V* const prev = lrows.row((i - 1) & 1);
      V* const row = lrows.row(i & 1);

      // Column 0 (edge: no W/NW) per lane, mirrored into the lane row.
      for (std::size_t s = 0; s < S; ++s) {
        const P& p = *probs[s];
        const auto read = [&t = tables[s]](std::size_t ii, std::size_t jj) {
          return t.at(ii, jj);
        };
        const V v = compute_cell(p, deps, bound, i, 0, p.cols(), read);
        tables[s].at(i, 0) = v;
        row[s] = v;
      }
      for (std::size_t s = S; s < width; ++s) row[s] = row[0];

      // Shared interior in lockstep, in column blocks: the kernel fills a
      // block of the lane row, and the transpose scatter
      // (lanes::lane_scatter) de-interleaves it into the per-lane table
      // rows while it is still L1-resident (at width 8 a full 4K-column
      // row is ~32 KB per stream — prev, row, staged inputs, outputs —
      // which thrashes L1 if the kernel and the scatter each stream the
      // whole row). The W carry re-seeds from row[(j0-1)·width] at each
      // block boundary, so blocking does not change any computed value.
      Traits::fill_row(state, lp.data(), width, i);
      for (std::size_t s = 0; s < S; ++s)
        grows[s] = tables[s].data() + i * probs[s]->cols();
      constexpr std::size_t kColBlock = 256;
      for (std::size_t jb = 1; jb < jK; jb += kColBlock) {
        const std::size_t je = std::min(jK, jb + kColBlock);
        lanes::RowCtx<V> ctx;
        ctx.width = width;
        ctx.i = i;
        ctx.j0 = jb;
        ctx.j1 = je;
        ctx.prev = prev;
        ctx.row = row;
        Traits::run(state, ctx);
        // The transpose scatter is int32-only (the dispatched kernel
        // families); wider value types (e.g. the int64 synthetic MaxNw)
        // de-interleave with the plain loop.
        if constexpr (std::is_same_v<V, std::int32_t>) {
          scatter(row, width, jb, je, grows.data(), S);
        } else {
          for (std::size_t s = 0; s < S; ++s)
            for (std::size_t j = jb; j < je; ++j)
              grows[s][j] = row[j * width + s];
        }
      }

      // NE edge column: reads prev-row column min_cols from the lane's
      // own table (final — last row's remainder wrote it).
      if (jK < min_cols) {
        const std::size_t j = min_cols - 1;
        for (std::size_t s = 0; s < S; ++s) {
          const P& p = *probs[s];
          const auto read = [&t = tables[s]](std::size_t ii,
                                             std::size_t jj) {
            return t.at(ii, jj);
          };
          const V v = compute_cell(p, deps, bound, i, j, p.cols(), read);
          tables[s].at(i, j) = v;
          row[j * width + s] = v;
        }
        for (std::size_t s = S; s < width; ++s)
          row[j * width + s] = row[j * width];
      }

      // Per-lane column remainder — before the next row, whose NE edge
      // reads this remainder's first column.
      for (std::size_t s = 0; s < S; ++s) {
        const P& p = *probs[s];
        const std::size_t pc = p.cols();
        if (pc <= min_cols) continue;
        V* const grow = tables[s].data() + i * pc;
        run_row(p, deps, bound, i, min_cols, pc, pc,
                tables[s].data() + (i - 1) * pc, grow, batch_kernels);
      }
    }

    // Lanes taller than min_rows retire from lockstep and finish solo.
    for (std::size_t s = 0; s < S; ++s)
      lane_fill_rows(*probs[s], tables[s], min_rows, batch_kernels);

    st.width = width;
    st.lockstep_cells = S * (min_rows - 1) * (jK - 1);
  }

  if (stats_out) *stats_out = st;
  return tables;
}

/// Copies a finished canonical row into the frontier table's resident
/// storage (checkpoint row and/or last row); all other rows are dropped.
template <typename V>
void harvest_lane_row(FrontierTable<V>& t, std::size_t i, std::size_t k,
                      const V* row, std::size_t cols) {
  if (i % k == 0) std::copy(row, row + cols, t.checkpoint_row(i));
  if (i + 1 == t.rows()) std::copy(row, row + cols, t.last_row());
}

/// Frontier analogue of lane_fill_rows: rows [r0, rows) through a
/// two-row rolling buffer `rb` (2 x cols; row r0 - 1, when r0 > 0, must
/// already sit at rb[(r0 - 1) & 1]), harvesting checkpoints as it goes.
template <LddpProblem P>
void lane_fill_rows_frontier(const P& p,
                             FrontierTable<typename P::Value>& t,
                             typename P::Value* rb, std::size_t r0,
                             std::size_t k, bool batch) {
  using V = typename P::Value;
  const std::size_t m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  for (std::size_t i = r0; i < p.rows(); ++i) {
    const V* prev = i > 0 ? rb + ((i - 1) & 1) * m : nullptr;
    V* const row = rb + (i & 1) * m;
    run_row(p, deps, bound, i, 0, m, m, prev, row, batch);
    harvest_lane_row(t, i, k, row, m);
  }
}

/// Frontier-tier lane cohort: the same lockstep sweep as
/// solve_lane_cohort, but each lane rolls a two-row buffer instead of a
/// full table and retains only its checkpoint rows (every ks[s] rows)
/// plus the last row. Returns bare checkpointed tables — the caller
/// attaches the remat callback (and problem ownership) afterwards.
///
/// Every value is produced by the identical kernels and scalar edges as
/// the full-table driver, so checkpoints are bit-identical to full-tier
/// rows; transient memory per lane is 2 x cols values. Because no lane
/// keeps a full table, there is no kLaneMaxCells-style cell cap here.
template <LddpProblem P>
std::vector<FrontierTable<typename P::Value>> solve_lane_cohort_frontier(
    const std::vector<const P*>& probs, const std::vector<std::size_t>& ks,
    bool batch_kernels, LaneExecStats* stats_out,
    const std::function<void(std::size_t)>& poll = {}) {
  using V = typename P::Value;
  using Traits = lanes::LaneTraits<P>;
  const std::size_t S = probs.size();
  LDDP_CHECK(S > 0 && ks.size() == S);

  std::vector<FrontierTable<V>> tables;
  tables.reserve(S);
  std::vector<AlignedBuf<V>> rbufs(S);
  std::size_t min_rows = std::numeric_limits<std::size_t>::max();
  std::size_t min_cols = min_rows;
  LaneExecStats st;
  st.lanes = S;
  for (std::size_t s = 0; s < S; ++s) {
    const P* p = probs[s];
    tables.push_back(
        FrontierTable<V>::checkpointed(p->rows(), p->cols(), ks[s]));
    rbufs[s].ensure(2 * p->cols());
    min_rows = std::min(min_rows, p->rows());
    min_cols = std::min(min_cols, p->cols());
    st.total_cells += p->rows() * p->cols();
  }

  bool lockstep = false;
  if constexpr (Traits::enabled)
    lockstep = batch_kernels && S >= 2 && min_rows >= 2 && min_cols >= 4;
  if (!lockstep) {
    for (std::size_t s = 0; s < S; ++s) {
      if (poll) poll(s);
      lane_fill_rows_frontier(*probs[s], tables[s], rbufs[s].data(), 0,
                              ks[s], batch_kernels);
    }
    if (stats_out) *stats_out = st;
    return tables;
  }

  if constexpr (Traits::enabled) {
    const ContributingSet deps = probs[0]->deps();
    const V bound = probs[0]->boundary();
    const std::size_t jK = deps.has_ne() ? min_cols - 1 : min_cols;
    const std::size_t width = (S + 3) / 4 * 4;

    std::vector<const P*> lp(width, probs[0]);
    std::copy(probs.begin(), probs.end(), lp.begin());

    LaneGrid<V> lrows(2, min_cols, width);  // rolling: row(i & 1)
    auto state = Traits::make(lp.data(), width, min_rows, min_cols);
    const lanes::ScatterFn scatter = lanes::lane_scatter(width);
    std::vector<V*> grows(S);  // per-lane rolling-row bases, set per row

    // Row 0 per lane into the rolling buffers, then interleave the shared
    // columns as the first lockstep predecessor row.
    for (std::size_t s = 0; s < S; ++s) {
      const P& p = *probs[s];
      run_row(p, deps, bound, 0, 0, p.cols(), p.cols(), nullptr,
              rbufs[s].data(), batch_kernels);
      harvest_lane_row(tables[s], 0, ks[s], rbufs[s].data(), p.cols());
    }
    V* const row0 = lrows.row(0);
    for (std::size_t j = 0; j < min_cols; ++j)
      for (std::size_t s = 0; s < width; ++s)
        row0[j * width + s] = rbufs[s < S ? s : 0].data()[j];

    for (std::size_t i = 1; i < min_rows; ++i) {
      if (poll) poll(i);
      const V* const prev = lrows.row((i - 1) & 1);
      V* const row = lrows.row(i & 1);

      // Column 0 (edge: no W/NW) per lane, mirrored into the lane row.
      for (std::size_t s = 0; s < S; ++s) {
        const P& p = *probs[s];
        const std::size_t pc = p.cols();
        const V* const rb = rbufs[s].data();
        const auto read = [rb, pc](std::size_t ii, std::size_t jj) {
          return rb[(ii & 1) * pc + jj];
        };
        const V v = compute_cell(p, deps, bound, i, 0, pc, read);
        rbufs[s].data()[(i & 1) * pc] = v;
        row[s] = v;
      }
      for (std::size_t s = S; s < width; ++s) row[s] = row[0];

      // Shared interior in lockstep (identical blocking and scatter to
      // the full-table driver), de-interleaved into the rolling rows.
      Traits::fill_row(state, lp.data(), width, i);
      for (std::size_t s = 0; s < S; ++s)
        grows[s] = rbufs[s].data() + (i & 1) * probs[s]->cols();
      constexpr std::size_t kColBlock = 256;
      for (std::size_t jb = 1; jb < jK; jb += kColBlock) {
        const std::size_t je = std::min(jK, jb + kColBlock);
        lanes::RowCtx<V> ctx;
        ctx.width = width;
        ctx.i = i;
        ctx.j0 = jb;
        ctx.j1 = je;
        ctx.prev = prev;
        ctx.row = row;
        Traits::run(state, ctx);
        if constexpr (std::is_same_v<V, std::int32_t>) {
          scatter(row, width, jb, je, grows.data(), S);
        } else {
          for (std::size_t s = 0; s < S; ++s)
            for (std::size_t j = jb; j < je; ++j)
              grows[s][j] = row[j * width + s];
        }
      }

      // NE edge column: reads prev-row column min_cols from the lane's
      // rolling buffer (final — last row's remainder wrote it).
      if (jK < min_cols) {
        const std::size_t j = min_cols - 1;
        for (std::size_t s = 0; s < S; ++s) {
          const P& p = *probs[s];
          const std::size_t pc = p.cols();
          const V* const rb = rbufs[s].data();
          const auto read = [rb, pc](std::size_t ii, std::size_t jj) {
            return rb[(ii & 1) * pc + jj];
          };
          const V v = compute_cell(p, deps, bound, i, j, pc, read);
          rbufs[s].data()[(i & 1) * pc + j] = v;
          row[j * width + s] = v;
        }
        for (std::size_t s = S; s < width; ++s)
          row[j * width + s] = row[j * width];
      }

      // Per-lane column remainder, then harvest the finished row.
      for (std::size_t s = 0; s < S; ++s) {
        const P& p = *probs[s];
        const std::size_t pc = p.cols();
        V* const grow = rbufs[s].data() + (i & 1) * pc;
        if (pc > min_cols)
          run_row(p, deps, bound, i, min_cols, pc, pc,
                  rbufs[s].data() + ((i - 1) & 1) * pc, grow, batch_kernels);
        harvest_lane_row(tables[s], i, ks[s], grow, pc);
      }
    }

    // Lanes taller than min_rows retire from lockstep and finish solo.
    for (std::size_t s = 0; s < S; ++s)
      lane_fill_rows_frontier(*probs[s], tables[s], rbufs[s].data(),
                              min_rows, ks[s], batch_kernels);

    st.width = width;
    st.lockstep_cells = S * (min_rows - 1) * (jK - 1);
  }

  if (stats_out) *stats_out = st;
  return tables;
}

}  // namespace lddp::detail
