// Request-lifecycle surface of the batch engine: cancellation tokens,
// structured per-request outcomes, submit-time lifecycle options, and the
// `--chaos seed[:rate]` spec that arms a deterministic FaultPlan.
//
// Everything here is about *requests* — the engine-facing vocabulary on
// top of the mechanism in util/fault_injection.h. A request submitted with
// a deadline, a retry budget and a cancellation token runs through the
// engine's lifecycle loop: injected or genuine failures retry down a
// graceful-degradation ladder with deterministic simulated-time backoff,
// cancellation and deadline violations stop the attempt stream, and the
// final outcome is reported both on the future (an exception for anything
// but success) and in BatchReport (structured, per request).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "util/check.h"
#include "util/fault_injection.h"

namespace lddp::chaos {

/// How one batch request ended (BatchItemStats::outcome).
enum class RequestOutcome : std::uint8_t {
  kOk = 0,            ///< first attempt succeeded
  kRetried,           ///< succeeded after retries, same configuration
  kDegraded,          ///< succeeded on a degraded rung (slower path)
  kDeadlineExceeded,  ///< simulated deadline hit (exception on future)
  kCancelled,         ///< cancellation observed (exception on future)
  kFailed,            ///< retry budget exhausted (exception on future)
};

inline const char* to_string(RequestOutcome o) {
  switch (o) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kRetried:
      return "retried";
    case RequestOutcome::kDegraded:
      return "degraded";
    case RequestOutcome::kDeadlineExceeded:
      return "deadline-exceeded";
    case RequestOutcome::kCancelled:
      return "cancelled";
    case RequestOutcome::kFailed:
      return "failed";
  }
  return "?";
}

class CancelSource;

/// Shared handle to a cancellation flag. Copyable; a default-constructed
/// token is inert (never cancelled). Obtained from CancelSource::token().
class CancelToken {
 public:
  CancelToken() = default;

  bool valid() const { return flag_ != nullptr; }
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }
  /// Raw flag pointer for fault::RequestControl (null when inert). The
  /// token (or its source) must outlive any control referencing it.
  const std::atomic<bool>* flag() const { return flag_.get(); }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Owner side of a cancellation flag. request_cancel() is sticky and
/// thread-safe; in-flight solves observe it at their next op-record or
/// lane-row boundary and fail with fault::CancelledError.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }
  CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Per-request lifecycle options for BatchEngine::submit.
struct RequestOptions {
  double weight = 1.0;        ///< WFQ weight (must be positive)
  /// Simulated-time deadline in ms: < 0 inherits BatchConfig::deadline_ms,
  /// 0 disables, > 0 overrides.
  double deadline_ms = -1.0;
  /// Retry budget: < 0 inherits BatchConfig::max_retries.
  long long max_retries = -1;
  CancelToken cancel;         ///< optional cancellation token
};

/// Parsed `--chaos seed[:rate]` flag: a uniform per-site failure rate
/// under one seed. Rate defaults to 0.02 when omitted.
struct ChaosSpec {
  std::uint64_t seed = 0;
  double rate = 0.0;

  static ChaosSpec parse(const std::string& text) {
    ChaosSpec spec;
    const std::size_t colon = text.find(':');
    const std::string seed_str = text.substr(0, colon);
    char* end = nullptr;
    spec.seed = std::strtoull(seed_str.c_str(), &end, 10);
    LDDP_CHECK_MSG(end != nullptr && *end == '\0' && !seed_str.empty(),
                   "bad --chaos seed: " << text);
    if (colon == std::string::npos) {
      spec.rate = 0.02;
    } else {
      const std::string rate_str = text.substr(colon + 1);
      spec.rate = std::strtod(rate_str.c_str(), &end);
      LDDP_CHECK_MSG(end != nullptr && *end == '\0' && !rate_str.empty() &&
                         spec.rate >= 0.0 && spec.rate <= 1.0,
                     "bad --chaos rate: " << text);
    }
    return spec;
  }

  fault::FaultPlan plan() const {
    return fault::FaultPlan::uniform(seed, rate);
  }
};

}  // namespace lddp::chaos
