// Analytic timing of a *tiled* (block-per-tile) kernel — the shared-memory
// staging alternative to the thread-per-cell wavefront kernel of kernel.h.
//
// One thread block owns one tile: it stages the tile's halo (north row,
// west column) and its input slice from global memory into shared memory,
// sweeps the tile's cell rows with one thread per cell column, and writes
// the finished tile back. Modeled duration of one tile-front launch:
//
//   launch_overhead + extra + max(compute, memory)
//
//   compute = max(cells * gpu_cycles / lane_rate,        // saturated device
//                 waves * block_critical_path,           // few wide tiles
//                 min_exec_latency)
//     block_critical_path = min_exec_latency + tile_rows * row_step
//     row_step            = gpu_cycles_per_cell / clock  // smem-resident row
//     waves               = ceil(tiles / concurrent blocks by occupancy)
//
//   memory  = staged_bytes * mem_amplification / effective DRAM bandwidth
//
// The memory term is the tiling win: neighbour reads come from shared
// memory, so global traffic shrinks from bytes_per_cell per cell to the
// tile load + store plus its halo (tiled_staged_bytes). The compute term
// keeps the in-tile row sweep honest: a block serializes its tile_rows
// shared-memory rounds, so very large tiles lengthen the critical path and
// very small tile counts leave SMs idle — the concavity the tile tuner
// sweeps.
#pragma once

#include <cstddef>

#include "sim/kernel.h"

namespace lddp::sim {

/// Execution-only duration of one block-per-tile launch over `num_tiles`
/// tiles of at most tile_rows x tile_cols cells (`cells` valid in total)
/// staging `staged_bytes` of global traffic. Pairs with kernel_exec_seconds:
/// a fused graph node pays this plus the per-node issue cost.
double tiled_kernel_exec_seconds(const GpuSpec& spec, const KernelInfo& info,
                                 std::size_t num_tiles, std::size_t tile_rows,
                                 std::size_t tile_cols, std::size_t cells,
                                 std::size_t staged_bytes);

/// Floor-free variant of tiled_kernel_exec_seconds — the irreducible cost
/// of the tile front when it rides as a segment inside another tenant's
/// packed launch: the carrier has already filled the pipeline, so the
/// standalone min_exec_latency floor and the first wave's fill latency are
/// amortizable; later waves' serialized block critical paths are real work
/// and stay. Pairs with kernel_packed_exec_seconds.
double tiled_kernel_packed_exec_seconds(const GpuSpec& spec,
                                        const KernelInfo& info,
                                        std::size_t num_tiles,
                                        std::size_t tile_rows,
                                        std::size_t tile_cols,
                                        std::size_t cells,
                                        std::size_t staged_bytes);

/// Full eager-launch duration: launch_overhead + tiled_kernel_exec_seconds.
double tiled_kernel_seconds(const GpuSpec& spec, const KernelInfo& info,
                            std::size_t num_tiles, std::size_t tile_rows,
                            std::size_t tile_cols, std::size_t cells,
                            std::size_t staged_bytes);

/// Global-memory traffic of a staged tile launch: per cell, everything of
/// bytes_per_cell except the deps_count neighbour reads that now hit shared
/// memory (never less than the value store itself), plus the halo loads.
std::size_t tiled_staged_bytes(const KernelInfo& info, int deps_count,
                               std::size_t value_bytes, std::size_t cells,
                               std::size_t halo_cells);

}  // namespace lddp::sim
