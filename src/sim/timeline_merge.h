// Deterministic replay of recorded per-solve schedules onto one shared
// timeline — the simulation core of the batch engine.
//
// Each *job* is a complete solo-run Timeline (every op with its resource,
// duration and dependency list, as retained by Timeline::op_deps). The
// merger re-times all admitted jobs against the shared platform's
// resources: an op starts when its job is released, its own recorded
// dependencies have finished, and its (shared) resource is free. Ops of one
// job keep their internal dependency structure — per-solve streams stay
// FIFO, events never cross jobs — while different jobs' ops interleave on
// the shared CPU / GPU-compute / DMA engines. That interleaving is the
// simulated time-sharing: one solve's CPU strips fill another solve's
// CPU-idle phases, kernels from distinct solves queue on the compute
// engine like kernels from distinct CUDA streams.
//
// Cross-solve packing (enable_packing): whenever the op about to be
// scheduled shares its *pack window* — same shared resource, identical
// feasible start — with the head ops of other packable jobs, the whole set
// is emitted as one multi-tenant packed launch. The window head keeps its
// full recorded cost (it is the submission that carries the pack); each
// rider replaces its annotated amortizable submission cost
// (Timeline::op_pack_overhead — launch overhead, graph-node issue,
// pipeline-fill padding, per-copy latency) with the spec's
// packed_segment_issue_us, priced through sim::PackedKernel and clamped so
// a rider never costs more than launching alone. Riders are appended to
// the resource in admission-rank order, so the packed schedule stays a
// pure function of (recorded timelines, admission order, release times).
//
// Scheduling is greedy earliest-feasible-start with a fixed tie-break
// (admission rank, then op order), so the merged schedule — packed or not —
// is independent of any real-thread interleaving. This is what makes batch
// runs deterministically replayable.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/device_spec.h"
#include "sim/timeline.h"

namespace lddp::sim {

class TimelineMerger {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// `shared` receives the merged ops; it must outlive the merger.
  explicit TimelineMerger(Timeline& shared) : shared_(&shared) {}

  /// Turns on cross-solve packing for jobs added with `packable = true`;
  /// `spec` prices rider segments (packed_segment_issue_us).
  void enable_packing(const GpuSpec& spec) {
    pack_spec_ = spec;
    packing_ = true;
  }
  bool packing() const { return packing_; }

  /// Admits a job. `recorded` must outlive the merge; `release` is the
  /// simulated instant before which none of its ops may start, and
  /// `release_dep` (an op already in the shared timeline, ending at
  /// `release`) encodes that gate as a dependency — kNoOp when the job is
  /// admitted at time zero. Resources are matched to the shared timeline by
  /// name (they must all exist there). `packable` opts the job into
  /// cross-solve packing (no effect unless enable_packing was called).
  /// Returns the job's admission rank.
  std::size_t add(const Timeline& recorded, double release,
                  OpId release_dep = kNoOp, bool packable = true);

  /// True while any admitted job still has unscheduled ops or finished
  /// completions have not been drained by step().
  bool busy() const { return remaining_ > 0 || finished_head_ < finished_.size(); }

  /// Schedules the pack window with the globally-smallest feasible start
  /// time (ties: lowest admission rank, then op order) into the shared
  /// timeline — a single op when packing is off or no co-ready rider
  /// exists. Returns the admission rank of a job that just finished its
  /// last op, or kNone; a pack can finish several jobs at once, so extra
  /// completions are queued and returned by subsequent step() calls (which
  /// then schedule nothing).
  std::size_t step();

  /// Completion time of a finished job (max end over its ops).
  double job_end(std::size_t rank) const { return jobs_[rank].end; }
  /// First-op start time of a job with at least one scheduled op.
  double job_start(std::size_t rank) const { return jobs_[rank].start; }
  /// The shared-timeline op achieving job_end — a release_dep for add().
  OpId job_last_op(std::size_t rank) const { return jobs_[rank].last_op; }

  /// Multi-tenant packed launches emitted (windows with >= 2 segments).
  std::size_t pack_count() const { return pack_count_; }
  /// Rider segments re-priced inside a pack (excludes window heads).
  std::size_t packed_ops() const { return packed_ops_; }
  /// Submission seconds amortized away relative to unpacked pricing.
  double pack_saved_seconds() const { return pack_saved_; }

 private:
  struct Job {
    const Timeline* recorded;
    double release;
    OpId release_dep;
    bool packable = true;
    std::size_t next = 0;              // head: next recorded op to place
    std::vector<OpId> shared_ids;      // recorded op id -> shared op id
    std::vector<Timeline::ResourceId> resource_map;
    double start = 0.0, end = 0.0;
    OpId last_op = kNoOp;
  };

  double feasible_start(const Job& job) const;
  /// Places job `rank`'s head op with `duration` (the recorded duration
  /// for window heads, the PackedKernel price for riders) and queues the
  /// job on finished_ if that was its last op.
  void place(std::size_t rank, double duration);

  Timeline* shared_;
  std::vector<Job> jobs_;
  std::size_t remaining_ = 0;  // unscheduled ops across all jobs
  bool packing_ = false;
  GpuSpec pack_spec_;
  std::size_t pack_count_ = 0;
  std::size_t packed_ops_ = 0;
  double pack_saved_ = 0.0;
  // Completions not yet returned by step(); drained front-to-back.
  std::vector<std::size_t> finished_;
  std::size_t finished_head_ = 0;
};

}  // namespace lddp::sim
