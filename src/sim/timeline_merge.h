// Deterministic replay of recorded per-solve schedules onto one shared
// timeline — the simulation core of the batch engine.
//
// Each *job* is a complete solo-run Timeline (every op with its resource,
// duration and dependency list, as retained by Timeline::op_deps). The
// merger re-times all admitted jobs against the shared platform's
// resources: an op starts when its job is released, its own recorded
// dependencies have finished, and its (shared) resource is free. Ops of one
// job keep their internal dependency structure — per-solve streams stay
// FIFO, events never cross jobs — while different jobs' ops interleave on
// the shared CPU / GPU-compute / DMA engines. That interleaving is the
// simulated time-sharing: one solve's CPU strips fill another solve's
// CPU-idle phases, kernels from distinct solves queue on the compute
// engine like kernels from distinct CUDA streams.
//
// Scheduling is greedy earliest-feasible-start with a fixed tie-break
// (admission rank, then op order), so the merged schedule is a pure
// function of (recorded timelines, admission order, release times) —
// independent of any real-thread interleaving. This is what makes batch
// runs deterministically replayable.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/timeline.h"

namespace lddp::sim {

class TimelineMerger {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// `shared` receives the merged ops; it must outlive the merger.
  explicit TimelineMerger(Timeline& shared) : shared_(&shared) {}

  /// Admits a job. `recorded` must outlive the merge; `release` is the
  /// simulated instant before which none of its ops may start, and
  /// `release_dep` (an op already in the shared timeline, ending at
  /// `release`) encodes that gate as a dependency — kNoOp when the job is
  /// admitted at time zero. Resources are matched to the shared timeline by
  /// name (they must all exist there). Returns the job's admission rank.
  std::size_t add(const Timeline& recorded, double release,
                  OpId release_dep = kNoOp);

  /// True while any admitted job still has unscheduled ops.
  bool busy() const { return remaining_ > 0; }

  /// Schedules the one op with the globally-smallest feasible start time
  /// (ties: lowest admission rank, then op order) into the shared timeline.
  /// Returns the admission rank of a job that just finished its last op, or
  /// kNone — the caller uses the completion to release the next queued job.
  std::size_t step();

  /// Completion time of a finished job (max end over its ops).
  double job_end(std::size_t rank) const { return jobs_[rank].end; }
  /// First-op start time of a job with at least one scheduled op.
  double job_start(std::size_t rank) const { return jobs_[rank].start; }
  /// The shared-timeline op achieving job_end — a release_dep for add().
  OpId job_last_op(std::size_t rank) const { return jobs_[rank].last_op; }

 private:
  struct Job {
    const Timeline* recorded;
    double release;
    OpId release_dep;
    std::size_t next = 0;              // head: next recorded op to place
    std::vector<OpId> shared_ids;      // recorded op id -> shared op id
    std::vector<Timeline::ResourceId> resource_map;
    double start = 0.0, end = 0.0;
    OpId last_op = kNoOp;
  };

  double feasible_start(const Job& job) const;

  Timeline* shared_;
  std::vector<Job> jobs_;
  std::size_t remaining_ = 0;  // unscheduled ops across all jobs
};

}  // namespace lddp::sim
