// Simulated CUDA-like device: streams, events, async copies, kernel launch.
//
// Semantics mirror the CUDA 5.0 model the paper uses:
//  * operations enqueued on one stream execute in FIFO order;
//  * operations on different streams may overlap (kernel with copy, copy
//    with copy when the device has two DMA engines);
//  * `stream_wait` is cudaStreamWaitEvent: the next op on the stream waits
//    for the given operation (any op id doubles as an event).
//
// Real execution is *eager*: a memcpy performs the byte copy and a launch
// runs the functor over all cells (optionally on the host thread pool)
// before returning. Because the caller issues operations in dependency
// order, eager execution is a valid linearization, so results are always
// bit-correct. The *simulated* schedule, with all its overlap, is recorded
// on the shared Timeline and provides the reproduced timing numbers.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "cpu/thread_pool.h"
#include "sim/device_spec.h"
#include "sim/kernel.h"
#include "sim/memory.h"
#include "sim/timeline.h"
#include "util/check.h"
#include "util/fault_injection.h"

namespace lddp::sim {

class Device {
 public:
  using StreamId = std::size_t;

  /// `pool` may be null: kernels then run serially on the calling thread.
  /// The Timeline must outlive the Device. `name` prefixes the device's
  /// timeline resources (distinguishes devices on multi-accelerator
  /// platforms). `buffers`, when given, backs alloc/alloc_pinned with
  /// reusable arenas and must outlive every buffer handed out.
  Device(GpuSpec spec, Timeline& timeline, cpu::ThreadPool* pool = nullptr,
         const std::string& name = "gpu", BufferPool* buffers = nullptr)
      : spec_(std::move(spec)), tl_(&timeline), pool_(pool),
        buffers_(buffers) {
    compute_res_ = tl_->add_resource(name + ".compute");
    h2d_res_ = tl_->add_resource(name + ".copy.h2d");
    d2h_res_ = spec_.copy_engines >= 2 ? tl_->add_resource(name + ".copy.d2h")
                                       : h2d_res_;
    streams_.push_back(Stream{});  // stream 0 = default stream
  }

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const GpuSpec& spec() const { return spec_; }
  Timeline& timeline() { return *tl_; }
  MemoryStats& stats() { return stats_; }
  const MemoryStats& stats() const { return stats_; }

  StreamId default_stream() const { return 0; }
  StreamId create_stream() {
    streams_.push_back(Stream{});
    return streams_.size() - 1;
  }
  std::size_t stream_count() const { return streams_.size(); }

  /// `zeroed = false` skips the allocation's zero-fill (cudaMalloc
  /// semantics); only for strategies that write every element before any
  /// read — the fill is real wall-clock at large table sizes.
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t count, bool zeroed = true) {
    return DeviceBuffer<T>(count, &stats_, buffers_, zeroed);
  }

  template <typename T>
  PinnedBuffer<T> alloc_pinned(std::size_t count) {
    return PinnedBuffer<T>(count, &stats_, buffers_);
  }

  BufferPool* buffer_pool() { return buffers_; }

  /// Async host-to-device copy on `stream`. Returns the op id (usable as an
  /// event). `kind` prices the copy (pinned vs pageable source).
  template <typename T>
  OpId memcpy_h2d(StreamId stream, T* dst_device, const T* src_host,
                  std::size_t count, MemoryKind kind,
                  OpId extra_dep = kNoOp) {
    LDDP_CHECK_MSG(dst_device != nullptr || count == 0,
                   "h2d into null device pointer");
    if (count == 0) return last_op(stream);
    fault::maybe_throw(fault::Site::kTransferH2D, count * sizeof(T));
    std::memcpy(dst_device, src_host, count * sizeof(T));
    stats_.h2d_bytes += count * sizeof(T);
    ++stats_.h2d_copies;
    return enqueue_copy(stream, h2d_res_, count * sizeof(T), kind, extra_dep,
                        "h2d");
  }

  /// Async device-to-host copy on `stream`.
  template <typename T>
  OpId memcpy_d2h(StreamId stream, T* dst_host, const T* src_device,
                  std::size_t count, MemoryKind kind,
                  OpId extra_dep = kNoOp) {
    LDDP_CHECK_MSG(src_device != nullptr || count == 0,
                   "d2h from null device pointer");
    if (count == 0) return last_op(stream);
    fault::maybe_throw(fault::Site::kTransferD2H, count * sizeof(T));
    std::memcpy(dst_host, src_device, count * sizeof(T));
    stats_.d2h_bytes += count * sizeof(T);
    ++stats_.d2h_copies;
    return enqueue_copy(stream, d2h_res_, count * sizeof(T), kind, extra_dep,
                        "d2h");
  }

  /// Records the cost of a host-to-device transfer whose real data movement
  /// the caller performs itself (e.g. scattering boundary cells through a
  /// layout mapping, which is not one contiguous memcpy).
  OpId record_h2d(StreamId stream, std::size_t bytes, MemoryKind kind,
                  OpId extra_dep = kNoOp) {
    if (bytes == 0) return last_op(stream);
    fault::maybe_throw(fault::Site::kTransferH2D, bytes);
    stats_.h2d_bytes += bytes;
    ++stats_.h2d_copies;
    return enqueue_copy(stream, h2d_res_, bytes, kind, extra_dep, "h2d");
  }

  /// Device-to-host counterpart of record_h2d.
  OpId record_d2h(StreamId stream, std::size_t bytes, MemoryKind kind,
                  OpId extra_dep = kNoOp) {
    if (bytes == 0) return last_op(stream);
    fault::maybe_throw(fault::Site::kTransferD2H, bytes);
    stats_.d2h_bytes += bytes;
    ++stats_.d2h_copies;
    return enqueue_copy(stream, d2h_res_, bytes, kind, extra_dep, "d2h");
  }

  /// Launches `body(cell)` for cell in [0, num_cells) — thread-per-cell, the
  /// paper's GPU mapping. Executes eagerly (via the pool when present),
  /// records the analytic duration on the compute resource.
  template <typename Body>
  OpId launch(StreamId stream, const KernelInfo& info, std::size_t num_cells,
              Body&& body, OpId extra_dep = kNoOp) {
    if (num_cells == 0) return last_op(stream);
    fault::maybe_throw(fault::Site::kKernelLaunch, num_cells);
    execute_cells(num_cells, body);
    const double seconds = kernel_seconds(spec_, info, num_cells);
    const OpId op =
        enqueue(stream, compute_res_, seconds, extra_dep, "kernel");
    tl_->annotate_pack(
        op, seconds - kernel_packed_exec_seconds(spec_, info, num_cells));
    return op;
  }

  /// Launches `body(t)` for tile t in [0, num_tiles) — the block-per-tile
  /// mapping of the tiled execution layer. The caller prices the launch
  /// (tiled_kernel_exec_seconds); this records launch overhead + that
  /// duration, mirroring launch(). `packed_exec_seconds`, when >= 0, is the
  /// floor-free pricing (tiled_kernel_packed_exec_seconds) used to annotate
  /// the amortizable share for the cross-solve packer.
  template <typename Body>
  OpId launch_tiled(StreamId stream, double exec_seconds,
                    std::size_t num_tiles, Body&& body,
                    OpId extra_dep = kNoOp,
                    double packed_exec_seconds = -1.0) {
    if (num_tiles == 0) return last_op(stream);
    fault::maybe_throw(fault::Site::kKernelLaunch, num_tiles);
    execute_tiles(num_tiles, std::forward<Body>(body));
    const double seconds = spec_.launch_overhead_us * 1e-6 + exec_seconds;
    const OpId op =
        enqueue(stream, compute_res_, seconds, extra_dep, "kernel");
    const double packed =
        packed_exec_seconds >= 0.0 ? packed_exec_seconds : exec_seconds;
    tl_->annotate_pack(op, seconds - std::min(packed, seconds));
    return op;
  }

  /// Eagerly runs `body` over [0, num_cells) on the host (via the pool for
  /// large counts) without recording anything — the execution half of
  /// launch(), also used by LaunchGraph when timeline recording is
  /// deferred to replay. `body` is either per-cell — `body(c)` — or
  /// ranged — `body(lo, hi)` over contiguous sub-ranges (the batch-front
  /// kernels). The timing model sees only the cell count, so the
  /// simulated schedule is identical for both forms.
  template <typename Body>
  void execute_cells(std::size_t num_cells, Body&& body) {
    if constexpr (std::is_invocable_v<Body&, std::size_t, std::size_t>) {
      if (pool_ && num_cells >= kParallelExecThreshold) {
        pool_->parallel_for_chunked(0, num_cells,
                                    [&body](std::size_t lo, std::size_t hi) {
                                      body(lo, hi);
                                    });
      } else {
        body(0, num_cells);
      }
    } else if (pool_ && num_cells >= kParallelExecThreshold) {
      pool_->parallel_for_chunked(0, num_cells,
                                  [&body](std::size_t lo, std::size_t hi) {
                                    for (std::size_t c = lo; c < hi; ++c)
                                      body(c);
                                  });
    } else {
      for (std::size_t c = 0; c < num_cells; ++c) body(c);
    }
  }

  /// Eagerly runs `body(t)` over [0, num_tiles) coarse-grained items (one
  /// item per pool task — tiles are big, unlike cells).
  template <typename Body>
  void execute_tiles(std::size_t num_tiles, Body&& body) {
    if (pool_ && num_tiles > 1) {
      pool_->parallel_for(0, num_tiles, [&body](std::size_t t) { body(t); });
    } else {
      for (std::size_t t = 0; t < num_tiles; ++t) body(t);
    }
  }

  /// cudaStreamWaitEvent: the next operation on `stream` will additionally
  /// wait for `event` (an op id from any stream) to complete. Multiple
  /// calls before the next operation accumulate.
  void stream_wait(StreamId stream, OpId event) {
    LDDP_CHECK(stream < streams_.size());
    if (event != kNoOp) streams_[stream].pending_waits.push_back(event);
  }

  /// Last operation enqueued on the stream (kNoOp if none) — record this as
  /// an "event" for cross-stream or CPU-side dependencies.
  OpId last_op(StreamId stream) const {
    LDDP_CHECK(stream < streams_.size());
    return streams_[stream].last;
  }

  /// Device-wide synchronize: all work was executed eagerly, so this only
  /// reports the simulated completion time of everything enqueued so far.
  double synchronize() const { return tl_->makespan(); }

  /// Total simulated kernel time (utilization numerator).
  double compute_busy() const { return tl_->busy_time(compute_res_); }

  /// Total simulated DMA time across the copy engine(s).
  double copy_busy() const {
    double t = tl_->busy_time(h2d_res_);
    if (d2h_res_ != h2d_res_) t += tl_->busy_time(d2h_res_);
    return t;
  }

 private:
  friend class LaunchGraph;

  // Below this size the fork/join cost of the host pool exceeds the loop.
  static constexpr std::size_t kParallelExecThreshold = 4096;

  struct Stream {
    OpId last = kNoOp;
    std::vector<OpId> pending_waits;
  };

  /// Records one replayed graph node: explicit dependency list, stream
  /// FIFO chaining handled by the caller via set_last_op.
  OpId record_raw(Timeline::ResourceId res, double seconds,
                  std::span<const OpId> deps, const char* label) {
    return tl_->record(res, seconds, deps, label);
  }

  void set_last_op(StreamId stream, OpId op) {
    LDDP_CHECK(stream < streams_.size());
    streams_[stream].last = op;
  }

  /// enqueue() for a priced copy: records transfer_seconds and annotates
  /// the per-copy submission latency (everything above wire time) as
  /// amortizable by a cross-solve pack of DMA descriptors.
  OpId enqueue_copy(StreamId stream, Timeline::ResourceId res,
                    std::size_t bytes, MemoryKind kind, OpId extra_dep,
                    const char* label) {
    const double seconds = transfer_seconds(spec_, bytes, kind);
    const OpId op = enqueue(stream, res, seconds, extra_dep, label);
    tl_->annotate_pack(op,
                       seconds - transfer_exec_seconds(spec_, bytes, kind));
    return op;
  }

  OpId enqueue(StreamId stream, Timeline::ResourceId res, double seconds,
               OpId extra_dep, const char* label) {
    LDDP_CHECK(stream < streams_.size());
    Stream& s = streams_[stream];
    s.pending_waits.push_back(s.last);
    s.pending_waits.push_back(extra_dep);
    const OpId op = tl_->record(res, seconds, s.pending_waits, label);
    s.last = op;
    s.pending_waits.clear();
    return op;
  }

  GpuSpec spec_;
  Timeline* tl_;
  cpu::ThreadPool* pool_;
  BufferPool* buffers_ = nullptr;
  MemoryStats stats_;
  Timeline::ResourceId compute_res_{}, h2d_res_{}, d2h_res_{};
  std::vector<Stream> streams_;
};

}  // namespace lddp::sim
