#include "sim/kernel.h"

#include <algorithm>

#include "util/check.h"

namespace lddp::sim {

double gpu_peak_throughput(const GpuSpec& spec, const KernelInfo& info) {
  LDDP_CHECK(info.work.gpu_cycles_per_cell > 0);
  const double compute_rate = static_cast<double>(spec.sm_count) *
                              static_cast<double>(spec.cores_per_sm) *
                              spec.clock_ghz * 1e9 /
                              info.work.gpu_cycles_per_cell;
  const double mem_rate =
      spec.dram_bandwidth_gbs * spec.dram_efficiency * 1e9 /
      (info.work.bytes_per_cell * std::max(1.0, info.mem_amplification));
  return std::min(compute_rate, mem_rate);
}

double kernel_exec_seconds(const GpuSpec& spec, const KernelInfo& info,
                           std::size_t num_cells) {
  if (num_cells == 0) return 0.0;
  LDDP_CHECK(info.block_size > 0);

  // Compute term: saturated throughput with a latency floor. Round cells up
  // to whole blocks — the tail block occupies lanes it does not use.
  const std::size_t blocks =
      (num_cells + static_cast<std::size_t>(info.block_size) - 1) /
      static_cast<std::size_t>(info.block_size);
  const double padded_cells =
      static_cast<double>(blocks) * static_cast<double>(info.block_size);
  const double lane_rate = static_cast<double>(spec.sm_count) *
                           static_cast<double>(spec.cores_per_sm) *
                           spec.clock_ghz * 1e9;
  const double compute =
      std::max(padded_cells * info.work.gpu_cycles_per_cell / lane_rate,
               spec.min_exec_latency_us * 1e-6);

  // Memory term: effective traffic after coalescing amplification.
  const double traffic = static_cast<double>(num_cells) *
                         info.work.bytes_per_cell *
                         std::max(1.0, info.mem_amplification);
  const double memory =
      traffic / (spec.dram_bandwidth_gbs * spec.dram_efficiency * 1e9);

  return info.extra_us * 1e-6 + std::max(compute, memory);
}

double kernel_packed_exec_seconds(const GpuSpec& spec, const KernelInfo& info,
                                  std::size_t num_cells) {
  if (num_cells == 0) return 0.0;
  LDDP_CHECK(info.block_size > 0);
  const std::size_t blocks =
      (num_cells + static_cast<std::size_t>(info.block_size) - 1) /
      static_cast<std::size_t>(info.block_size);
  const double padded_cells =
      static_cast<double>(blocks) * static_cast<double>(info.block_size);
  const double lane_rate = static_cast<double>(spec.sm_count) *
                           static_cast<double>(spec.cores_per_sm) *
                           spec.clock_ghz * 1e9;
  // No min_exec_latency floor: the carrying launch has already filled the
  // pipeline, so a rider segment costs only its throughput time.
  const double compute =
      padded_cells * info.work.gpu_cycles_per_cell / lane_rate;
  const double traffic = static_cast<double>(num_cells) *
                         info.work.bytes_per_cell *
                         std::max(1.0, info.mem_amplification);
  const double memory =
      traffic / (spec.dram_bandwidth_gbs * spec.dram_efficiency * 1e9);
  return info.extra_us * 1e-6 + std::max(compute, memory);
}

double PackedKernel::add_segment(double recorded_s, double amortizable_s) {
  LDDP_CHECK_MSG(recorded_s >= 0.0 && amortizable_s >= 0.0,
                 "negative packed-segment pricing input");
  double priced = recorded_s;
  if (segments_ > 0) {
    const double issue = spec_->packed_segment_issue_us * 1e-6;
    const double irreducible =
        recorded_s - std::min(amortizable_s, recorded_s);
    priced = std::min(recorded_s, irreducible + issue);
  }
  ++segments_;
  saved_ += recorded_s - priced;
  total_ += priced;
  return priced;
}

double kernel_seconds(const GpuSpec& spec, const KernelInfo& info,
                      std::size_t num_cells) {
  if (num_cells == 0) return 0.0;
  return spec.launch_overhead_us * 1e-6 +
         kernel_exec_seconds(spec, info, num_cells);
}

double transfer_seconds(const GpuSpec& spec, std::size_t bytes,
                        MemoryKind kind) {
  if (bytes == 0) return 0.0;
  const double latency = (kind == MemoryKind::kPinned
                              ? spec.pinned_latency_us
                              : spec.pageable_latency_us) *
                         1e-6;
  const double bandwidth = (kind == MemoryKind::kPinned
                                ? spec.pinned_bandwidth_gbs
                                : spec.pageable_bandwidth_gbs) *
                           1e9;
  return latency + static_cast<double>(bytes) / bandwidth;
}

double transfer_exec_seconds(const GpuSpec& spec, std::size_t bytes,
                             MemoryKind kind) {
  if (bytes == 0) return 0.0;
  const double bandwidth = (kind == MemoryKind::kPinned
                                ? spec.pinned_bandwidth_gbs
                                : spec.pageable_bandwidth_gbs) *
                           1e9;
  return static_cast<double>(bytes) / bandwidth;
}

}  // namespace lddp::sim
