// Global-memory coalescing model (Section IV-B of the paper).
//
// A warp's 32 lanes issue their loads/stores together; the memory system
// services them in fixed-size segments (128 B on Kepler). When the lanes
// touch consecutive addresses the warp needs ceil(32*elem/128) segments —
// the "coalesced" best case the paper achieves by storing each wavefront
// contiguously. When lanes stride across rows of a row-major table, every
// lane can hit its own segment, multiplying the traffic by up to 32x.
//
// This module turns an access pattern into a transaction count; the kernel
// timing model converts transactions into simulated memory time, making the
// layout choice *measurable* in the reproduced figures.
#pragma once

#include <cstddef>
#include <span>

namespace lddp::sim {

/// Number of `segment_bytes`-sized, segment-aligned transactions needed to
/// service one warp whose lanes access the given byte offsets.
/// Offsets need not be sorted or distinct (inactive lanes: pass no offset).
std::size_t warp_transactions(std::span<const std::size_t> byte_offsets,
                              std::size_t segment_bytes);

/// Transactions per warp when lanes access elements of `elem_bytes` at a
/// constant stride of `stride_elems` elements (stride 1 == fully coalesced).
std::size_t strided_warp_transactions(std::size_t elem_bytes,
                                      std::size_t stride_elems,
                                      int warp_size,
                                      std::size_t segment_bytes);

/// Memory-traffic amplification factor for a strided pattern relative to
/// the coalesced one: 1.0 when stride==1, up to warp_size for huge strides.
double coalescing_amplification(std::size_t elem_bytes,
                                std::size_t stride_elems, int warp_size,
                                std::size_t segment_bytes);

}  // namespace lddp::sim
