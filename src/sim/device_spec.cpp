#include "sim/device_spec.h"

namespace lddp::sim {

GpuSpec GpuSpec::tesla_k20() {
  GpuSpec g;
  g.name = "Nvidia Tesla K20 (13 SMX, 2496 cores)";
  g.sm_count = 13;
  g.cores_per_sm = 192;
  g.clock_ghz = 0.706;
  g.max_threads_per_sm = 2048;
  g.launch_overhead_us = 4.0;
  g.min_exec_latency_us = 1.5;
  g.graph_node_issue_us = 0.4;
  g.packed_segment_issue_us = 0.6;
  g.dram_bandwidth_gbs = 208.0;
  g.dram_efficiency = 0.70;
  g.mapped_access_overhead_us = 0.25;
  g.pageable_latency_us = 10.0;
  g.pageable_bandwidth_gbs = 3.3;
  g.pinned_latency_us = 4.0;
  g.pinned_bandwidth_gbs = 6.0;
  g.copy_engines = 2;
  return g;
}

GpuSpec GpuSpec::gt650m() {
  GpuSpec g;
  g.name = "Nvidia GeForce GT 650M (2 SMX, 384 cores)";
  g.sm_count = 2;
  g.cores_per_sm = 192;
  g.clock_ghz = 0.900;
  g.max_threads_per_sm = 2048;
  g.launch_overhead_us = 6.0;   // mobile part, slower driver path
  g.min_exec_latency_us = 2.0;
  g.graph_node_issue_us = 0.6;
  g.packed_segment_issue_us = 0.9;
  g.dram_bandwidth_gbs = 28.8;  // DDR3 variant
  g.dram_efficiency = 0.65;
  g.mapped_access_overhead_us = 0.35;
  g.pageable_latency_us = 12.0;
  g.pageable_bandwidth_gbs = 2.2;
  g.pinned_latency_us = 5.0;
  g.pinned_bandwidth_gbs = 4.5;
  g.copy_engines = 1;
  return g;
}

GpuSpec GpuSpec::xeon_phi_5110p() {
  GpuSpec g;
  g.name = "Intel Xeon Phi 5110P (60 cores, 512-bit vectors)";
  g.sm_count = 60;        // in-order cores
  g.cores_per_sm = 16;    // 512-bit vector lanes (32-bit elements)
  g.clock_ghz = 1.053;
  g.max_threads_per_sm = 4;  // 4 hardware threads per core
  g.warp_size = 16;          // one vector issue group
  g.launch_overhead_us = 9.0;   // offload-region entry, slower than CUDA
  g.min_exec_latency_us = 2.5;
  g.graph_node_issue_us = 0.9;  // batched offload still crosses PCIe
  g.packed_segment_issue_us = 1.3;
  g.dram_bandwidth_gbs = 320.0;
  g.dram_efficiency = 0.50;  // achieved GDDR5 bandwidth is ~half of peak
  g.mapped_access_overhead_us = 0.30;
  g.pageable_latency_us = 12.0;
  g.pageable_bandwidth_gbs = 3.0;
  g.pinned_latency_us = 5.0;
  g.pinned_bandwidth_gbs = 6.0;
  g.copy_engines = 2;
  return g;
}

PlatformSpec PlatformSpec::hetero_high() {
  return PlatformSpec{"Hetero-High", cpu::CpuSpec::i7_980(),
                      GpuSpec::tesla_k20()};
}

PlatformSpec PlatformSpec::hetero_low() {
  return PlatformSpec{"Hetero-Low", cpu::CpuSpec::i7_3632qm(),
                      GpuSpec::gt650m()};
}

PlatformSpec PlatformSpec::hetero_phi() {
  return PlatformSpec{"Hetero-Phi", cpu::CpuSpec::i7_980(),
                      GpuSpec::xeon_phi_5110p()};
}

}  // namespace lddp::sim
