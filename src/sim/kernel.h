// Kernel description and analytic timing (the simulated SMX model).
//
// A kernel processes N cells with one light-weight thread per cell — the
// paper's GPU mapping (Section IV-A). Its simulated duration is
//
//   launch_overhead + max(compute_time, memory_time)
//
//   compute_time = max(N * cycles_per_cell / (SMs*cores*clock),
//                      min_exec_latency)
//   memory_time  = N * bytes_per_cell * mem_amplification / dram_bandwidth
//
// The compute term gives the throughput behaviour of a saturated device and
// the latency floor of a starved one; small wavefronts are therefore
// dominated by launch_overhead + min_exec_latency, which is the lever the
// paper's low-work-region CPU handoff pulls. `mem_amplification` comes from
// the coalescing model: 1.0 for wavefront-contiguous layouts, >1 otherwise.
#pragma once

#include <cstddef>
#include <string>

#include "cpu/cost_model.h"
#include "sim/device_spec.h"
#include "sim/memory.h"

namespace lddp::sim {

/// Launch-time description of a kernel; the cost model reads everything it
/// needs from here plus the GpuSpec.
struct KernelInfo {
  std::string name = "kernel";
  int block_size = 256;  ///< threads per block (affects tail waste only)
  cpu::WorkProfile work;  ///< shared CPU/GPU per-cell work profile
  /// Memory-traffic multiplier from the coalescing model (>= 1.0).
  double mem_amplification = 1.0;
  /// Fixed additional cost per launch, e.g. zero-copy mapped-pinned
  /// accesses in the two-way transfer scheme.
  double extra_us = 0.0;
};

/// Simulated seconds of device-side execution (excludes queueing delays,
/// which the Timeline adds when streams contend).
double kernel_seconds(const GpuSpec& spec, const KernelInfo& info,
                      std::size_t num_cells);

/// Execution-only portion of kernel_seconds: everything except the
/// per-launch driver overhead (extra_us included — mapped-pinned reaches
/// happen during execution). A fused launch graph replaces the per-kernel
/// launch_overhead with its per-node issue cost but pays this in full.
double kernel_exec_seconds(const GpuSpec& spec, const KernelInfo& info,
                           std::size_t num_cells);

/// Floor-free execution seconds: the throughput cost of the kernel's real
/// work (compute vs memory, extra_us) *without* the min_exec_latency
/// pipeline-fill floor. This is the irreducible cost of the kernel when it
/// rides as one grid segment inside another tenant's already-filled packed
/// launch; kernel_seconds minus this is the amortizable submission cost
/// (driver overhead + fill padding) a cross-solve packer can elide.
double kernel_packed_exec_seconds(const GpuSpec& spec, const KernelInfo& info,
                                  std::size_t num_cells);

/// Multi-tenant packed launch: co-ready fronts of several in-flight solves
/// submitted as one device command. Segments are appended in pack order.
/// The head pays its full recorded cost — it *is* the launch that carries
/// the pack (one launch overhead, or one graph-node issue when it already
/// rides a fused graph). Each follower replaces its amortizable submission
/// cost (Timeline::op_pack_overhead) with packed_segment_issue_us, clamped
/// so riding in a pack never prices worse than launching alone.
class PackedKernel {
 public:
  explicit PackedKernel(const GpuSpec& spec) : spec_(&spec) {}

  /// Prices the next segment. `recorded_s` is the op's solo duration,
  /// `amortizable_s` the annotated share of it that a pack can elide.
  /// Returns the seconds the segment occupies inside the pack.
  double add_segment(double recorded_s, double amortizable_s);

  std::size_t segments() const { return segments_; }
  /// Submission seconds amortized away relative to solo pricing so far.
  double saved_seconds() const { return saved_; }
  /// Total priced duration of the pack so far.
  double total_seconds() const { return total_; }

 private:
  const GpuSpec* spec_;
  std::size_t segments_ = 0;
  double saved_ = 0.0;
  double total_ = 0.0;
};

/// Throughput (cells/s) of the saturated device for this kernel — used by
/// workload-division heuristics to pick an initial t_share.
double gpu_peak_throughput(const GpuSpec& spec, const KernelInfo& info);

/// Simulated seconds for a host<->device copy of `bytes` bytes whose host
/// endpoint lives in `kind` memory.
double transfer_seconds(const GpuSpec& spec, std::size_t bytes,
                        MemoryKind kind);

/// Wire-time-only portion of transfer_seconds (bytes / bandwidth, no
/// per-copy submission latency) — what a copy node costs inside a fused
/// launch graph, where the DMA descriptor is pre-built.
double transfer_exec_seconds(const GpuSpec& spec, std::size_t bytes,
                             MemoryKind kind);

}  // namespace lddp::sim
