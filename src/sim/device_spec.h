// Static description of a simulated CUDA-like device and the combined
// heterogeneous platform.
//
// The paper evaluates on two testbeds (Section II-A):
//   Hetero-High: Intel i7-980  + Nvidia Tesla K20   (13 SMX x 192 cores)
//   Hetero-Low:  Intel i7-3632QM + Nvidia GT 650M   ( 2 SMX x 192 cores)
// These presets carry the published micro-architectural numbers plus
// empirically-typical launch/transfer overheads of the CUDA 5.0 era; the
// analytic model built on them reproduces the paper's qualitative results
// (who wins where, and where the crossovers fall).
#pragma once

#include <string>

#include "cpu/cost_model.h"

namespace lddp::sim {

/// GPU micro-architecture + interconnect parameters used by the timing
/// model (kernel.h) and the transfer engine (device.h).
struct GpuSpec {
  std::string name;

  // --- compute -----------------------------------------------------------
  int sm_count = 1;              ///< streaming multiprocessors
  int cores_per_sm = 192;        ///< CUDA cores per SM (Kepler SMX)
  double clock_ghz = 1.0;        ///< core clock
  int max_threads_per_sm = 2048; ///< resident-thread limit (occupancy cap)
  int warp_size = 32;
  /// Fixed cost of getting a kernel onto the device: driver call, command
  /// push, scheduling. Dominates wavefronts with few cells — the effect
  /// the paper's low-work-region handoff to the CPU exploits.
  double launch_overhead_us = 5.0;
  /// Pipeline fill latency: even a one-thread kernel takes this long.
  double min_exec_latency_us = 2.0;
  /// Per-node issue cost inside a fused launch graph (cudaGraphLaunch
  /// replay): the device front-end dequeues a pre-built command instead of
  /// taking a full driver round trip, so this is a small fraction of
  /// launch_overhead_us. One full launch_overhead_us is still paid per
  /// graph submission.
  double graph_node_issue_us = 0.5;
  /// Per-segment issue cost inside a *multi-tenant packed launch*: when the
  /// batch engine fuses ready fronts of several co-resident solves into one
  /// submission, the head segment pays its own full submission cost and
  /// every rider pays only this — the front-end reads another grid-segment
  /// descriptor from the already-open command buffer. Slightly above
  /// graph_node_issue_us because the rider's kernel arguments are foreign
  /// to the pre-built graph and must be patched in.
  double packed_segment_issue_us = 0.8;

  // --- memory ------------------------------------------------------------
  double dram_bandwidth_gbs = 100.0;  ///< global-memory peak bandwidth
  /// Fraction of peak DRAM bandwidth a well-coalesced kernel achieves.
  double dram_efficiency = 0.65;
  int transaction_bytes = 128;        ///< coalescing segment size
  /// Extra per-front cost of touching zero-copy mapped pinned memory (the
  /// two-way transfer scheme, Section IV-C2): a handful of PCIe round
  /// trips amortized by warp switching.
  double mapped_access_overhead_us = 0.25;

  // --- host interconnect (PCIe) ------------------------------------------
  double pageable_latency_us = 10.0;  ///< per-copy fixed cost, pageable host
  double pageable_bandwidth_gbs = 3.0;
  double pinned_latency_us = 4.0;     ///< pinned: no staging copy
  double pinned_bandwidth_gbs = 6.0;
  int copy_engines = 1;  ///< concurrent DMA engines (K20 has 2)

  /// Nvidia Tesla K20 (Kepler GK110): 13 SMX, 2496 cores, 208 GB/s.
  static GpuSpec tesla_k20();
  /// Nvidia GeForce GT 650M (Kepler GK107): 2 SMX, 384 cores.
  static GpuSpec gt650m();
  /// Intel Xeon Phi 5110P modeled as an accelerator: 60 cores x 16-wide
  /// 512-bit vector lanes, offload-region launch latency, GDDR5 memory —
  /// the "other accelerators like Intel Xeon-Phi" the paper's conclusion
  /// asks about.
  static GpuSpec xeon_phi_5110p();

  /// Peak resident threads across the device.
  long long max_resident_threads() const {
    return static_cast<long long>(sm_count) * max_threads_per_sm;
  }
};

/// A heterogeneous platform = one CPU + one GPU, as in the paper.
struct PlatformSpec {
  std::string name;
  cpu::CpuSpec cpu;
  GpuSpec gpu;

  static PlatformSpec hetero_high();
  static PlatformSpec hetero_low();
  /// i7-980 host + Xeon Phi 5110P accelerator (conclusion's what-if).
  static PlatformSpec hetero_phi();
};

}  // namespace lddp::sim
