#include "sim/tile_kernel.h"

#include <algorithm>

#include "util/check.h"

namespace lddp::sim {

double tiled_kernel_exec_seconds(const GpuSpec& spec, const KernelInfo& info,
                                 std::size_t num_tiles, std::size_t tile_rows,
                                 std::size_t tile_cols, std::size_t cells,
                                 std::size_t staged_bytes) {
  if (num_tiles == 0 || cells == 0) return 0.0;
  LDDP_CHECK(tile_rows >= 1 && tile_cols >= 1);

  // Occupancy: one thread per tile column, blocks padded to whole warps.
  const std::size_t warp = static_cast<std::size_t>(spec.warp_size);
  const std::size_t block_threads =
      std::max(warp, (tile_cols + warp - 1) / warp * warp);
  const std::size_t blocks_per_sm = std::max<std::size_t>(
      1, static_cast<std::size_t>(spec.max_threads_per_sm) / block_threads);
  const std::size_t concurrent =
      std::max<std::size_t>(1, static_cast<std::size_t>(spec.sm_count) *
                                   blocks_per_sm);
  const std::size_t waves = (num_tiles + concurrent - 1) / concurrent;

  const double lane_rate = static_cast<double>(spec.sm_count) *
                           static_cast<double>(spec.cores_per_sm) *
                           spec.clock_ghz * 1e9;
  const double throughput =
      static_cast<double>(cells) * info.work.gpu_cycles_per_cell / lane_rate;
  // One shared-memory row round per tile row; the block's columns run in
  // lockstep, so the round costs one cell's cycles at core clock.
  const double row_step =
      info.work.gpu_cycles_per_cell / (spec.clock_ghz * 1e9);
  const double block_path = spec.min_exec_latency_us * 1e-6 +
                            static_cast<double>(tile_rows) * row_step;
  const double compute =
      std::max({throughput, static_cast<double>(waves) * block_path,
                spec.min_exec_latency_us * 1e-6});

  const double memory = static_cast<double>(staged_bytes) *
                        std::max(1.0, info.mem_amplification) /
                        (spec.dram_bandwidth_gbs * spec.dram_efficiency * 1e9);

  return info.extra_us * 1e-6 + std::max(compute, memory);
}

double tiled_kernel_packed_exec_seconds(const GpuSpec& spec,
                                        const KernelInfo& info,
                                        std::size_t num_tiles,
                                        std::size_t tile_rows,
                                        std::size_t tile_cols,
                                        std::size_t cells,
                                        std::size_t staged_bytes) {
  if (num_tiles == 0 || cells == 0) return 0.0;
  LDDP_CHECK(tile_rows >= 1 && tile_cols >= 1);

  const std::size_t warp = static_cast<std::size_t>(spec.warp_size);
  const std::size_t block_threads =
      std::max(warp, (tile_cols + warp - 1) / warp * warp);
  const std::size_t blocks_per_sm = std::max<std::size_t>(
      1, static_cast<std::size_t>(spec.max_threads_per_sm) / block_threads);
  const std::size_t concurrent =
      std::max<std::size_t>(1, static_cast<std::size_t>(spec.sm_count) *
                                   blocks_per_sm);
  const std::size_t waves = (num_tiles + concurrent - 1) / concurrent;

  const double lane_rate = static_cast<double>(spec.sm_count) *
                           static_cast<double>(spec.cores_per_sm) *
                           spec.clock_ghz * 1e9;
  const double throughput =
      static_cast<double>(cells) * info.work.gpu_cycles_per_cell / lane_rate;
  const double row_step =
      info.work.gpu_cycles_per_cell / (spec.clock_ghz * 1e9);
  const double fill = spec.min_exec_latency_us * 1e-6;
  const double block_path = fill + static_cast<double>(tile_rows) * row_step;
  // The carrier filled the pipeline: no standalone floor, and the first
  // wave's fill latency is hidden. Later waves refill after a dependent
  // wave completes — that serialization is genuine and stays priced.
  const double compute = std::max(
      throughput, static_cast<double>(waves) * block_path - fill);

  const double memory = static_cast<double>(staged_bytes) *
                        std::max(1.0, info.mem_amplification) /
                        (spec.dram_bandwidth_gbs * spec.dram_efficiency * 1e9);

  return info.extra_us * 1e-6 + std::max(compute, memory);
}

double tiled_kernel_seconds(const GpuSpec& spec, const KernelInfo& info,
                            std::size_t num_tiles, std::size_t tile_rows,
                            std::size_t tile_cols, std::size_t cells,
                            std::size_t staged_bytes) {
  if (num_tiles == 0 || cells == 0) return 0.0;
  return spec.launch_overhead_us * 1e-6 +
         tiled_kernel_exec_seconds(spec, info, num_tiles, tile_rows,
                                   tile_cols, cells, staged_bytes);
}

std::size_t tiled_staged_bytes(const KernelInfo& info, int deps_count,
                               std::size_t value_bytes, std::size_t cells,
                               std::size_t halo_cells) {
  const double saved =
      static_cast<double>(deps_count) * static_cast<double>(value_bytes);
  const double per_cell =
      std::max(static_cast<double>(value_bytes),
               info.work.bytes_per_cell - saved);
  return static_cast<std::size_t>(per_cell * static_cast<double>(cells)) +
         halo_cells * value_bytes;
}

}  // namespace lddp::sim
