// Simulated device/host memory.
//
// Device buffers own real host RAM (kernels execute on the host), but they
// are distinct allocations from any host-side buffer — data becomes visible
// to the "device" only through an explicit transfer. A strategy that forgets
// a boundary transfer therefore computes on stale values and fails the
// correctness tests, exactly as it would on real hardware.
//
// Pinned buffers model cudaHostAlloc storage: the transfer engine prices
// copies from/to them with lower latency and higher bandwidth (Section
// IV-C2 of the paper uses pinned memory for small two-way transfers).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>

#include "util/check.h"

namespace lddp::sim {

/// Where a host-side pointer lives — determines transfer pricing.
enum class MemoryKind {
  kPageable,  ///< ordinary malloc/new memory; staged through a bounce buffer
  kPinned,    ///< page-locked; DMA engine reads it directly
};

/// Book-keeping shared by a Device and its buffers.
struct MemoryStats {
  std::size_t device_bytes_allocated = 0;
  std::size_t device_bytes_peak = 0;
  std::size_t pinned_bytes_allocated = 0;
  std::size_t h2d_bytes = 0;
  std::size_t d2h_bytes = 0;
  std::size_t h2d_copies = 0;
  std::size_t d2h_copies = 0;
};

/// A typed region of simulated device global memory.
///
/// Movable, non-copyable (it is an owning handle, like a cudaMalloc
/// allocation). Element access is provided for *kernel* code only; host
/// strategy code must go through Device::memcpy_* to respect the
/// transfer-visibility discipline above.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(std::size_t count, MemoryStats* stats)
      : data_(count ? new T[count]() : nullptr), size_(count), stats_(stats) {
    if (stats_) {
      stats_->device_bytes_allocated += bytes();
      stats_->device_bytes_peak =
          std::max(stats_->device_bytes_peak, stats_->device_bytes_allocated);
    }
  }

  DeviceBuffer(DeviceBuffer&& o) noexcept { swap(o); }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      swap(o);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer() { release(); }

  std::size_t size() const { return size_; }
  std::size_t bytes() const { return size_ * sizeof(T); }
  bool empty() const { return size_ == 0; }

  /// Raw device pointer — pass to kernels.
  T* device_ptr() { return data_.get(); }
  const T* device_ptr() const { return data_.get(); }

 private:
  void release() {
    if (data_ && stats_) stats_->device_bytes_allocated -= bytes();
    data_.reset();
    size_ = 0;
    stats_ = nullptr;
  }
  void swap(DeviceBuffer& o) {
    std::swap(data_, o.data_);
    std::swap(size_, o.size_);
    std::swap(stats_, o.stats_);
  }

  std::unique_ptr<T[]> data_;
  std::size_t size_ = 0;
  MemoryStats* stats_ = nullptr;
};

/// Page-locked host memory (cudaHostAlloc equivalent).
template <typename T>
class PinnedBuffer {
 public:
  PinnedBuffer() = default;
  PinnedBuffer(std::size_t count, MemoryStats* stats)
      : data_(count ? new T[count]() : nullptr), size_(count), stats_(stats) {
    if (stats_) stats_->pinned_bytes_allocated += count * sizeof(T);
  }
  PinnedBuffer(PinnedBuffer&& o) noexcept { swap(o); }
  PinnedBuffer& operator=(PinnedBuffer&& o) noexcept {
    if (this != &o) {
      release();
      swap(o);
    }
    return *this;
  }
  PinnedBuffer(const PinnedBuffer&) = delete;
  PinnedBuffer& operator=(const PinnedBuffer&) = delete;
  ~PinnedBuffer() { release(); }

  std::size_t size() const { return size_; }
  std::size_t bytes() const { return size_ * sizeof(T); }
  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  T& operator[](std::size_t i) {
    LDDP_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    LDDP_DCHECK(i < size_);
    return data_[i];
  }

  static constexpr MemoryKind kind() { return MemoryKind::kPinned; }

 private:
  void release() {
    if (data_ && stats_) stats_->pinned_bytes_allocated -= bytes();
    data_.reset();
    size_ = 0;
    stats_ = nullptr;
  }
  void swap(PinnedBuffer& o) {
    std::swap(data_, o.data_);
    std::swap(size_, o.size_);
    std::swap(stats_, o.stats_);
  }

  std::unique_ptr<T[]> data_;
  std::size_t size_ = 0;
  MemoryStats* stats_ = nullptr;
};

}  // namespace lddp::sim
