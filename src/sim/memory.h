// Simulated device/host memory.
//
// Device buffers own real host RAM (kernels execute on the host), but they
// are distinct allocations from any host-side buffer — data becomes visible
// to the "device" only through an explicit transfer. A strategy that forgets
// a boundary transfer therefore computes on stale values and fails the
// correctness tests, exactly as it would on real hardware.
//
// Pinned buffers model cudaHostAlloc storage: the transfer engine prices
// copies from/to them with lower latency and higher bandwidth (Section
// IV-C2 of the paper uses pinned memory for small two-way transfers).
//
// A BufferPool lets repeated solve() calls (tuner sweeps, benches,
// multi-run services) reuse device/pinned arenas instead of re-allocating.
// Reused storage is zeroed by default, so pooled buffers keep the
// fresh-allocation semantics of cudaMalloc-then-memset that the strategies
// rely on; allocations may opt out (`zeroed = false`) when every element
// is written before it is read.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <vector>

#include "util/check.h"
#include "util/fault_injection.h"

namespace lddp::sim {

/// Where a host-side pointer lives — determines transfer pricing.
enum class MemoryKind {
  kPageable,  ///< ordinary malloc/new memory; staged through a bounce buffer
  kPinned,    ///< page-locked; DMA engine reads it directly
};

/// Book-keeping shared by a Device and its buffers.
struct MemoryStats {
  std::size_t device_bytes_allocated = 0;
  std::size_t device_bytes_peak = 0;
  std::size_t pinned_bytes_allocated = 0;
  std::size_t h2d_bytes = 0;
  std::size_t d2h_bytes = 0;
  std::size_t h2d_copies = 0;
  std::size_t d2h_copies = 0;
};

/// Arena cache for device and pinned-host allocations (cudaMalloc /
/// cudaHostAlloc are expensive; real frameworks pool them — so do we).
///
/// Best-fit on size; released arenas go back to the free list instead of
/// the heap. acquire() always returns zero-filled storage. Thread-safe: a
/// process-wide pool may serve concurrent solve() calls. acquire/release
/// are virtual so decorators (QuotaBufferPool below) can interpose on the
/// same RunConfig::buffer_pool plumbing.
class BufferPool {
 public:
  struct Stats {
    std::size_t hits = 0;          ///< acquisitions served from the cache
    std::size_t misses = 0;        ///< acquisitions that hit the heap
    std::size_t bytes_reused = 0;  ///< sum of requested bytes over hits
    std::size_t live_bytes = 0;       ///< bytes currently checked out
    std::size_t peak_live_bytes = 0;  ///< arena high-water across the run
  };

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  virtual ~BufferPool() { trim(); }

  /// Returns storage of at least `bytes` (aligned for any scalar type),
  /// zero-filled unless the caller opts out. `pinned` selects the
  /// pinned-host cache — pinned and device arenas never mix, as on real
  /// hardware. `zeroed = false` skips the fill (cudaMalloc semantics) and
  /// is only for clients that overwrite every element before reading it:
  /// at tens of MB the memset costs as much as real work.
  virtual void* acquire(std::size_t bytes, bool pinned, bool zeroed = true) {
    if (bytes == 0) return nullptr;
    fault::maybe_throw(fault::Site::kPoolAcquire, bytes);
    std::lock_guard<std::mutex> lock(mu_);
    auto& cache = pinned ? pinned_free_ : device_free_;
    std::size_t best = cache.size();
    for (std::size_t k = 0; k < cache.size(); ++k) {
      if (cache[k].bytes < bytes) continue;
      if (best == cache.size() || cache[k].bytes < cache[best].bytes)
        best = k;
    }
    if (best != cache.size()) {
      void* p = cache[best].data;
      cache[best] = cache.back();
      cache.pop_back();
      if (zeroed) std::memset(p, 0, bytes);
      ++stats_.hits;
      stats_.bytes_reused += bytes;
      note_checkout(bytes);
      return p;
    }
    void* p = ::operator new(bytes);
    if (zeroed) std::memset(p, 0, bytes);
    ++stats_.misses;
    note_checkout(bytes);
    return p;
  }

  /// Returns an arena from acquire() to the cache. `bytes` must be the
  /// size originally requested.
  virtual void release(void* p, std::size_t bytes, bool pinned) {
    if (p == nullptr) return;
    std::lock_guard<std::mutex> lock(mu_);
    LDDP_DCHECK(stats_.live_bytes >= bytes);
    stats_.live_bytes -= bytes;
    (pinned ? pinned_free_ : device_free_).push_back(Arena{p, bytes});
  }

  /// Frees every cached arena (buffers still in use are unaffected).
  void trim() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& a : device_free_) ::operator delete(a.data);
    for (auto& a : pinned_free_) ::operator delete(a.data);
    device_free_.clear();
    pinned_free_.clear();
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  std::size_t cached_arenas() const {
    std::lock_guard<std::mutex> lock(mu_);
    return device_free_.size() + pinned_free_.size();
  }

 private:
  struct Arena {
    void* data;
    std::size_t bytes;
  };

  // Caller holds mu_.
  void note_checkout(std::size_t bytes) {
    stats_.live_bytes += bytes;
    stats_.peak_live_bytes =
        std::max(stats_.peak_live_bytes, stats_.live_bytes);
  }

  mutable std::mutex mu_;
  std::vector<Arena> device_free_;
  std::vector<Arena> pinned_free_;
  Stats stats_;
};

/// Per-client quota view over a shared BufferPool (the batch engine gives
/// each in-flight solve one of these). Up to `quota_bytes` of outstanding
/// storage is borrowed from the parent pool; acquisitions beyond the quota
/// fall through to the plain heap, so one oversized solve can neither
/// hoard the shared arena cache nor starve its peers of reuse. A zero
/// quota means unlimited (pure pass-through).
///
/// Thread-safe like its parent; must not outlive it, and all buffers must
/// be released before destruction (enforced).
class QuotaBufferPool final : public BufferPool {
 public:
  QuotaBufferPool(BufferPool* parent, std::size_t quota_bytes)
      : parent_(parent), quota_(quota_bytes) {
    LDDP_CHECK(parent != nullptr);
  }
  ~QuotaBufferPool() override {
    LDDP_CHECK_MSG(outstanding_ == 0 && direct_.empty(),
                   "QuotaBufferPool destroyed with live buffers");
  }

  void* acquire(std::size_t bytes, bool pinned, bool zeroed = true) override {
    if (bytes == 0) return nullptr;
    fault::maybe_throw(fault::Site::kQuotaAcquire, bytes);
    {
      std::lock_guard<std::mutex> lock(quota_mu_);
      if (quota_ != 0 && outstanding_ + bytes > quota_) {
        void* p = ::operator new(bytes);
        if (zeroed) std::memset(p, 0, bytes);
        direct_.push_back(p);
        ++over_quota_;
        return p;
      }
      outstanding_ += bytes;
    }
    // The quota commit above must roll back if the parent acquisition
    // fails (an injected kPoolAcquire fault, or a real bad_alloc):
    // otherwise the destructor's live-buffer check fires during unwinding
    // — inside a noexcept destructor — and terminates the process.
    try {
      return parent_->acquire(bytes, pinned, zeroed);
    } catch (...) {
      std::lock_guard<std::mutex> lock(quota_mu_);
      outstanding_ -= bytes;
      throw;
    }
  }

  void release(void* p, std::size_t bytes, bool pinned) override {
    if (p == nullptr) return;
    {
      std::lock_guard<std::mutex> lock(quota_mu_);
      auto it = std::find(direct_.begin(), direct_.end(), p);
      if (it != direct_.end()) {
        *it = direct_.back();
        direct_.pop_back();
        ::operator delete(p);
        return;
      }
      LDDP_DCHECK(outstanding_ >= bytes);
      outstanding_ -= bytes;
    }
    parent_->release(p, bytes, pinned);
  }

  std::size_t outstanding_bytes() const {
    std::lock_guard<std::mutex> lock(quota_mu_);
    return outstanding_;
  }
  /// Acquisitions that exceeded the quota and bypassed the parent pool.
  std::size_t over_quota_count() const {
    std::lock_guard<std::mutex> lock(quota_mu_);
    return over_quota_;
  }

 private:
  BufferPool* parent_;
  std::size_t quota_;
  mutable std::mutex quota_mu_;
  std::size_t outstanding_ = 0;  // bytes currently borrowed from parent_
  std::size_t over_quota_ = 0;
  std::vector<void*> direct_;    // live over-quota heap allocations
};

namespace detail {

/// Shared storage logic of DeviceBuffer / PinnedBuffer: zeroed elements,
/// optionally borrowed from a BufferPool (trivially-copyable T only — the
/// pool hands out raw zeroed bytes) and returned to it on release.
template <typename T>
struct PooledStorage {
  T* data = nullptr;
  std::size_t size = 0;
  BufferPool* pool = nullptr;

  void acquire(std::size_t count, BufferPool* from, bool pinned,
               bool zeroed = true) {
    if (count == 0) return;
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (from != nullptr) {
        data =
            static_cast<T*>(from->acquire(count * sizeof(T), pinned, zeroed));
        size = count;
        pool = from;
        return;
      }
      if (!zeroed) {
        data = new T[count];  // default-init: trivial T stays unwritten
        size = count;
        return;
      }
    }
    data = new T[count]();
    size = count;
  }

  void release(bool pinned) {
    if (data == nullptr) return;
    if (pool != nullptr)
      pool->release(data, size * sizeof(T), pinned);
    else
      delete[] data;
    data = nullptr;
    size = 0;
    pool = nullptr;
  }

  void swap(PooledStorage& o) {
    std::swap(data, o.data);
    std::swap(size, o.size);
    std::swap(pool, o.pool);
  }
};

}  // namespace detail

/// A typed region of simulated device global memory.
///
/// Movable, non-copyable (it is an owning handle, like a cudaMalloc
/// allocation). Element access is provided for *kernel* code only; host
/// strategy code must go through Device::memcpy_* to respect the
/// transfer-visibility discipline above.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(std::size_t count, MemoryStats* stats,
               BufferPool* pool = nullptr, bool zeroed = true)
      : stats_(stats) {
    storage_.acquire(count, pool, /*pinned=*/false, zeroed);
    if (stats_) {
      stats_->device_bytes_allocated += bytes();
      stats_->device_bytes_peak =
          std::max(stats_->device_bytes_peak, stats_->device_bytes_allocated);
    }
  }

  DeviceBuffer(DeviceBuffer&& o) noexcept { swap(o); }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      swap(o);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer() { release(); }

  std::size_t size() const { return storage_.size; }
  std::size_t bytes() const { return storage_.size * sizeof(T); }
  bool empty() const { return storage_.size == 0; }
  bool pooled() const { return storage_.pool != nullptr; }

  /// Raw device pointer — pass to kernels.
  T* device_ptr() { return storage_.data; }
  const T* device_ptr() const { return storage_.data; }

 private:
  void release() {
    if (storage_.data && stats_) stats_->device_bytes_allocated -= bytes();
    storage_.release(/*pinned=*/false);
    stats_ = nullptr;
  }
  void swap(DeviceBuffer& o) {
    storage_.swap(o.storage_);
    std::swap(stats_, o.stats_);
  }

  detail::PooledStorage<T> storage_;
  MemoryStats* stats_ = nullptr;
};

/// Page-locked host memory (cudaHostAlloc equivalent).
template <typename T>
class PinnedBuffer {
 public:
  PinnedBuffer() = default;
  PinnedBuffer(std::size_t count, MemoryStats* stats,
               BufferPool* pool = nullptr)
      : stats_(stats) {
    storage_.acquire(count, pool, /*pinned=*/true);
    if (stats_) stats_->pinned_bytes_allocated += count * sizeof(T);
  }
  PinnedBuffer(PinnedBuffer&& o) noexcept { swap(o); }
  PinnedBuffer& operator=(PinnedBuffer&& o) noexcept {
    if (this != &o) {
      release();
      swap(o);
    }
    return *this;
  }
  PinnedBuffer(const PinnedBuffer&) = delete;
  PinnedBuffer& operator=(const PinnedBuffer&) = delete;
  ~PinnedBuffer() { release(); }

  std::size_t size() const { return storage_.size; }
  std::size_t bytes() const { return storage_.size * sizeof(T); }
  bool pooled() const { return storage_.pool != nullptr; }
  T* data() { return storage_.data; }
  const T* data() const { return storage_.data; }
  T& operator[](std::size_t i) {
    LDDP_DCHECK(i < storage_.size);
    return storage_.data[i];
  }
  const T& operator[](std::size_t i) const {
    LDDP_DCHECK(i < storage_.size);
    return storage_.data[i];
  }

  static constexpr MemoryKind kind() { return MemoryKind::kPinned; }

 private:
  void release() {
    if (storage_.data && stats_) stats_->pinned_bytes_allocated -= bytes();
    storage_.release(/*pinned=*/true);
    stats_ = nullptr;
  }
  void swap(PinnedBuffer& o) {
    storage_.swap(o.storage_);
    std::swap(stats_, o.stats_);
  }

  detail::PooledStorage<T> storage_;
  MemoryStats* stats_ = nullptr;
};

}  // namespace lddp::sim
