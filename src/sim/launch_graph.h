// CUDA-Graph-style fused launches (cudaGraphLaunch replay).
//
// A strategy records a dependency-ordered sequence of per-front kernels and
// interleaved async copies through a LaunchGraph and replays them as ONE
// device submission. Real execution stays eager — a kernel body runs at
// add-time, in exactly the order the legacy path runs it, so results are
// bit-identical. What changes is the *timing model*: instead of a full
// `launch_overhead` per operation, a replayed graph pays one full
// `launch_overhead` for the submission plus a small `graph_node_issue_us`
// per node (the device front-end dequeues pre-built commands).
//
// The graph also works as a transparent pass-through: constructed with
// `fused = false` every call forwards to the Device immediately with legacy
// pricing. Strategies therefore keep a single code path and the
// `fused_launches` RunConfig flag picks the cost model.
//
// Dependency rules in fused mode:
//  * graph-internal deps are node handles (returned by launch/record_*);
//  * external deps must be OpIds recorded on the Timeline before replay()
//    runs — true for CPU ops in the one-way-transfer patterns, which is
//    why two-way patterns (CPU reads GPU results mid-phase) must run with
//    fusing off, exactly like a real CUDA graph cannot span host syncs.
#pragma once

#include <algorithm>
#include <exception>
#include <utility>
#include <vector>

#include "sim/device.h"
#include "sim/kernel.h"
#include "sim/timeline.h"
#include "util/fault_injection.h"

namespace lddp::sim {

class LaunchGraph {
 public:
  /// High bit marks a not-yet-replayed node handle; real Timeline OpIds
  /// stay far below it.
  static constexpr OpId kNodeFlag = 0x80000000u;

  LaunchGraph(Device& dev, bool fused) : dev_(&dev), fused_(fused) {}

  LaunchGraph(const LaunchGraph&) = delete;
  LaunchGraph& operator=(const LaunchGraph&) = delete;

  /// Un-replayed nodes are submitted on destruction (safety net; strategies
  /// normally replay explicitly before recording dependent host-side ops).
  /// replay() can throw — an injected kGraphReplay fault, or a lifecycle
  /// check on the timeline — which is fine on the normal path (the dtor is
  /// noexcept(false)) but must never happen while another exception is
  /// unwinding the strategy: pending nodes are abandoned instead. Their
  /// real work already executed eagerly; only unrecorded timing is lost,
  /// and the failing solve's timeline is discarded anyway.
  ~LaunchGraph() noexcept(false) {
    if (std::uncaught_exceptions() == 0)
      replay();
    else
      abandon();
  }

  /// Drops all pending (un-replayed) nodes and per-stream graph state.
  void abandon() {
    pending_.clear();
    stream_last_.clear();
    stream_waits_.clear();
  }

  bool fused() const { return fused_; }
  Device& device() { return *dev_; }
  /// Nodes recorded through this graph so far (fused mode only).
  std::size_t node_count() const { return resolved_.size() + pending_.size(); }
  std::size_t replay_count() const { return replays_; }

  /// Device::launch, graph-aware. The body executes eagerly either way.
  template <typename Body>
  OpId launch(Device::StreamId stream, const KernelInfo& info,
              std::size_t num_cells, Body&& body, OpId extra_dep = kNoOp) {
    if (!fused_)
      return dev_->launch(stream, info, num_cells, std::forward<Body>(body),
                          extra_dep);
    if (num_cells == 0) return last_op(stream);
    fault::maybe_throw(fault::Site::kKernelLaunch, num_cells);
    dev_->execute_cells(num_cells, std::forward<Body>(body));
    return add_node(stream, dev_->compute_res_,
                    kernel_exec_seconds(dev_->spec_, info, num_cells),
                    kernel_packed_exec_seconds(dev_->spec_, info, num_cells),
                    extra_dep, "kernel");
  }

  /// Device::launch_tiled, graph-aware: a block-per-tile kernel whose
  /// execution duration the caller priced (tiled_kernel_exec_seconds;
  /// `packed_exec_seconds` is the floor-free pricing from
  /// tiled_kernel_packed_exec_seconds, or -1 for "same as exec").
  template <typename Body>
  OpId launch_tiled(Device::StreamId stream, double exec_seconds,
                    std::size_t num_tiles, Body&& body,
                    OpId extra_dep = kNoOp,
                    double packed_exec_seconds = -1.0) {
    if (!fused_)
      return dev_->launch_tiled(stream, exec_seconds, num_tiles,
                                std::forward<Body>(body), extra_dep,
                                packed_exec_seconds);
    if (num_tiles == 0) return last_op(stream);
    fault::maybe_throw(fault::Site::kKernelLaunch, num_tiles);
    dev_->execute_tiles(num_tiles, std::forward<Body>(body));
    const double packed =
        packed_exec_seconds >= 0.0 ? packed_exec_seconds : exec_seconds;
    return add_node(stream, dev_->compute_res_, exec_seconds, packed,
                    extra_dep, "kernel");
  }

  /// Device::record_h2d, graph-aware.
  OpId record_h2d(Device::StreamId stream, std::size_t bytes, MemoryKind kind,
                  OpId extra_dep = kNoOp) {
    if (!fused_) return dev_->record_h2d(stream, bytes, kind, extra_dep);
    if (bytes == 0) return last_op(stream);
    fault::maybe_throw(fault::Site::kTransferH2D, bytes);
    dev_->stats_.h2d_bytes += bytes;
    ++dev_->stats_.h2d_copies;
    const double wire = transfer_exec_seconds(dev_->spec_, bytes, kind);
    return add_node(stream, dev_->h2d_res_, wire, wire, extra_dep, "h2d");
  }

  /// Device::record_d2h, graph-aware.
  OpId record_d2h(Device::StreamId stream, std::size_t bytes, MemoryKind kind,
                  OpId extra_dep = kNoOp) {
    if (!fused_) return dev_->record_d2h(stream, bytes, kind, extra_dep);
    if (bytes == 0) return last_op(stream);
    fault::maybe_throw(fault::Site::kTransferD2H, bytes);
    dev_->stats_.d2h_bytes += bytes;
    ++dev_->stats_.d2h_copies;
    const double wire = transfer_exec_seconds(dev_->spec_, bytes, kind);
    return add_node(stream, dev_->d2h_res_, wire, wire, extra_dep, "d2h");
  }

  /// Device::stream_wait, graph-aware: the next node on `stream` also waits
  /// for `event` (a node handle or an already-recorded OpId).
  void stream_wait(Device::StreamId stream, OpId event) {
    if (!fused_) {
      dev_->stream_wait(stream, event);
      return;
    }
    if (event != kNoOp) stream_waits(stream).push_back(event);
  }

  /// Newest operation on the stream: a node handle when the stream's tail
  /// is an un-replayed node, otherwise the device's last recorded op.
  OpId last_op(Device::StreamId stream) const {
    if (fused_ && stream < stream_last_.size() &&
        stream_last_[stream] != kNoOp)
      return stream_last_[stream];
    return dev_->last_op(stream);
  }

  /// Maps a node handle to the Timeline OpId it was replayed as; passes
  /// ordinary OpIds (and kNoOp) through. Valid only after replay().
  OpId resolve(OpId op) const {
    if (op == kNoOp || (op & kNodeFlag) == 0) return op;
    const std::size_t idx = op & ~kNodeFlag;
    LDDP_CHECK_MSG(idx < resolved_.size(),
                   "resolve() of a node that has not been replayed");
    return resolved_[idx];
  }

  /// Submits every pending node as one batch: the first node carries the
  /// full launch_overhead, each node adds graph_node_issue_us, stream FIFO
  /// order and recorded dependencies are preserved, and all ops land in
  /// one Timeline group (chrome://tracing still shows per-front spans).
  void replay() {
    if (!fused_ || pending_.empty()) return;
    fault::maybe_throw(fault::Site::kGraphReplay, pending_.size());
    Timeline& tl = dev_->timeline();
    tl.begin_group();
    const GpuSpec& spec = dev_->spec_;
    bool first = true;
    std::vector<OpId> deps;
    for (const Node& node : pending_) {
      deps.clear();
      deps.push_back(dev_->last_op(node.stream));
      for (OpId d : node.deps) deps.push_back(resolve(d));
      double seconds = node.exec_seconds + spec.graph_node_issue_us * 1e-6;
      if (first) {
        seconds += spec.launch_overhead_us * 1e-6;
        first = false;
      }
      const OpId op = dev_->record_raw(node.res, seconds, deps, node.label);
      // Everything above the floor-free execution time — node issue, the
      // submission's launch overhead, pipeline-fill padding — can be
      // amortized when the node rides in a cross-solve pack.
      tl.annotate_pack(op, seconds - std::min(node.packed_exec_seconds,
                                              seconds));
      dev_->set_last_op(node.stream, op);
      resolved_.push_back(op);
    }
    tl.end_group();
    pending_.clear();
    stream_last_.clear();
    ++replays_;
  }

 private:
  struct Node {
    Device::StreamId stream;
    Timeline::ResourceId res;
    double exec_seconds;
    double packed_exec_seconds;  ///< floor-free cost as a pack segment
    const char* label;
    std::vector<OpId> deps;  ///< node handles and/or pre-replay OpIds
  };

  OpId add_node(Device::StreamId stream, Timeline::ResourceId res,
                double exec_seconds, double packed_exec_seconds,
                OpId extra_dep, const char* label) {
    Node node{stream, res, exec_seconds, packed_exec_seconds, label, {}};
    if (extra_dep != kNoOp) node.deps.push_back(extra_dep);
    auto& waits = stream_waits(stream);
    node.deps.insert(node.deps.end(), waits.begin(), waits.end());
    waits.clear();
    const OpId handle =
        kNodeFlag | static_cast<OpId>(resolved_.size() + pending_.size());
    if (stream >= stream_last_.size()) stream_last_.resize(stream + 1, kNoOp);
    stream_last_[stream] = handle;
    pending_.push_back(std::move(node));
    return handle;
  }

  std::vector<OpId>& stream_waits(Device::StreamId stream) {
    if (stream >= stream_waits_.size()) stream_waits_.resize(stream + 1);
    return stream_waits_[stream];
  }

  Device* dev_;
  bool fused_;
  std::vector<Node> pending_;
  std::vector<OpId> resolved_;       ///< Timeline op of each replayed node
  std::vector<OpId> stream_last_;    ///< newest pending handle per stream
  std::vector<std::vector<OpId>> stream_waits_;
  std::size_t replays_ = 0;
};

}  // namespace lddp::sim
