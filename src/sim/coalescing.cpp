#include "sim/coalescing.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace lddp::sim {

std::size_t warp_transactions(std::span<const std::size_t> byte_offsets,
                              std::size_t segment_bytes) {
  LDDP_CHECK(segment_bytes > 0);
  if (byte_offsets.empty()) return 0;
  std::vector<std::size_t> segments;
  segments.reserve(byte_offsets.size());
  for (std::size_t off : byte_offsets) segments.push_back(off / segment_bytes);
  std::sort(segments.begin(), segments.end());
  segments.erase(std::unique(segments.begin(), segments.end()),
                 segments.end());
  return segments.size();
}

std::size_t strided_warp_transactions(std::size_t elem_bytes,
                                      std::size_t stride_elems, int warp_size,
                                      std::size_t segment_bytes) {
  LDDP_CHECK(elem_bytes > 0 && warp_size > 0);
  std::vector<std::size_t> offsets;
  offsets.reserve(static_cast<std::size_t>(warp_size));
  for (int lane = 0; lane < warp_size; ++lane) {
    offsets.push_back(static_cast<std::size_t>(lane) * stride_elems *
                      elem_bytes);
  }
  return warp_transactions(offsets, segment_bytes);
}

double coalescing_amplification(std::size_t elem_bytes,
                                std::size_t stride_elems, int warp_size,
                                std::size_t segment_bytes) {
  const std::size_t actual = strided_warp_transactions(
      elem_bytes, stride_elems, warp_size, segment_bytes);
  const std::size_t best =
      strided_warp_transactions(elem_bytes, 1, warp_size, segment_bytes);
  LDDP_CHECK(best > 0);
  return static_cast<double>(actual) / static_cast<double>(best);
}

}  // namespace lddp::sim
