#include "sim/timeline.h"

#include <algorithm>
#include <fstream>

#include "util/fault_injection.h"

namespace lddp::sim {

void Timeline::copy_from(const Timeline& o) {
  resources_ = o.resources_;
  starts_ = o.starts_;
  ends_ = o.ends_;
  op_resources_ = o.op_resources_;
  labels_ = o.labels_;
  groups_ = o.groups_;
  dep_pool_ = o.dep_pool_;
  dep_offsets_ = o.dep_offsets_;
  pack_overheads_ = o.pack_overheads_;
  current_group_ = o.current_group_;
  next_group_ = o.next_group_;
  makespan_ = o.makespan_;
  // control_ intentionally untouched: the per-attempt lifecycle control of
  // the source would dangle in a retained copy (e.g. a recorded schedule
  // handed to the batch merger).
}

void Timeline::check_cancelled() const {
  if (control_->cancelled()) throw fault::CancelledError();
}

void Timeline::check_deadline() const {
  if (control_->deadline_s > 0.0 && makespan_ > control_->deadline_s)
    throw fault::DeadlineExceededError(control_->deadline_s);
}

Timeline::ResourceId Timeline::add_resource(std::string name) {
  resources_.push_back(Resource{std::move(name), 0.0, 0.0});
  return static_cast<ResourceId>(resources_.size() - 1);
}

OpId Timeline::record(ResourceId resource, double duration_s,
                      std::span<const OpId> deps, const char* label) {
  LDDP_CHECK_MSG(resource < resources_.size(), "unknown resource id");
  LDDP_CHECK_MSG(duration_s >= 0.0, "negative op duration");
  if (control_ != nullptr) check_cancelled();
  double ready = resources_[resource].free_at;
  for (OpId d : deps) {
    if (d == kNoOp) continue;
    LDDP_CHECK_MSG(d < ends_.size(), "dependency on an unrecorded op");
    ready = std::max(ready, ends_[d]);
    dep_pool_.push_back(d);
  }
  dep_offsets_.push_back(static_cast<std::uint32_t>(dep_pool_.size()));
  const double end = ready + duration_s;
  resources_[resource].free_at = end;
  resources_[resource].busy += duration_s;
  starts_.push_back(ready);
  ends_.push_back(end);
  op_resources_.push_back(resource);
  labels_.push_back(label != nullptr ? label : "");
  groups_.push_back(current_group_);
  pack_overheads_.push_back(0.0);
  makespan_ = std::max(makespan_, end);
  if (control_ != nullptr) check_deadline();
  return static_cast<OpId>(ends_.size() - 1);
}

void Timeline::annotate_pack(OpId op, double seconds) {
  LDDP_CHECK(op < pack_overheads_.size());
  LDDP_CHECK_MSG(seconds >= 0.0, "negative pack overhead");
  pack_overheads_[op] += seconds;
}

double Timeline::op_pack_overhead(OpId op) const {
  LDDP_CHECK(op < pack_overheads_.size());
  return pack_overheads_[op];
}

OpId Timeline::record(ResourceId resource, double duration_s, OpId dep1,
                      OpId dep2, const char* label) {
  const OpId deps[2] = {dep1, dep2};
  return record(resource, duration_s, std::span<const OpId>(deps, 2), label);
}

double Timeline::start_time(OpId op) const {
  LDDP_CHECK(op < starts_.size());
  return starts_[op];
}

double Timeline::end_time(OpId op) const {
  LDDP_CHECK(op < ends_.size());
  return ends_[op];
}

double Timeline::resource_free_at(ResourceId r) const {
  LDDP_CHECK(r < resources_.size());
  return resources_[r].free_at;
}

double Timeline::busy_time(ResourceId r) const {
  LDDP_CHECK(r < resources_.size());
  return resources_[r].busy;
}

const std::string& Timeline::resource_name(ResourceId r) const {
  LDDP_CHECK(r < resources_.size());
  return resources_[r].name;
}

Timeline::ResourceId Timeline::op_resource(OpId op) const {
  LDDP_CHECK(op < op_resources_.size());
  return op_resources_[op];
}

GroupId Timeline::begin_group() {
  LDDP_CHECK_MSG(current_group_ == kNoGroup, "op groups do not nest");
  current_group_ = next_group_++;
  return current_group_;
}

void Timeline::end_group() {
  LDDP_CHECK_MSG(current_group_ != kNoGroup, "end_group without begin_group");
  current_group_ = kNoGroup;
}

GroupId Timeline::op_group(OpId op) const {
  LDDP_CHECK(op < groups_.size());
  return groups_[op];
}

const char* Timeline::op_label(OpId op) const {
  LDDP_CHECK(op < labels_.size());
  return labels_[op];
}

std::span<const OpId> Timeline::op_deps(OpId op) const {
  LDDP_CHECK(op + 1 < dep_offsets_.size());
  return std::span<const OpId>(dep_pool_.data() + dep_offsets_[op],
                               dep_offsets_[op + 1] - dep_offsets_[op]);
}

Timeline::ResourceId Timeline::find_resource(const std::string& name) const {
  for (ResourceId r = 0; r < resources_.size(); ++r)
    if (resources_[r].name == name) return r;
  return kNoResource;
}

void Timeline::reset() {
  starts_.clear();
  ends_.clear();
  op_resources_.clear();
  labels_.clear();
  groups_.clear();
  dep_pool_.clear();
  dep_offsets_.assign(1, 0);
  pack_overheads_.clear();
  current_group_ = kNoGroup;
  makespan_ = 0.0;
  for (auto& res : resources_) {
    res.free_at = 0.0;
    res.busy = 0.0;
  }
}

void Timeline::export_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  LDDP_CHECK_MSG(out.good(), "cannot open trace file " << path);
  out << "[\n";
  bool first = true;
  for (ResourceId r = 0; r < resources_.size(); ++r) {
    if (!first) out << ",\n";
    first = false;
    out << R"({"name":"thread_name","ph":"M","pid":0,"tid":)" << r
        << R"(,"args":{"name":")" << resources_[r].name << "\"}}";
  }
  for (OpId op = 0; op < ends_.size(); ++op) {
    if (ends_[op] <= starts_[op]) continue;  // zero-length sync points
    if (!first) out << ",\n";
    first = false;
    const char* label = labels_[op][0] != '\0' ? labels_[op] : "op";
    out << R"({"name":")" << label << R"(","ph":"X","pid":0,"tid":)"
        << op_resources_[op] << R"(,"ts":)" << starts_[op] * 1e6
        << R"(,"dur":)" << (ends_[op] - starts_[op]) * 1e6;
    if (groups_[op] != kNoGroup)
      out << R"(,"args":{"graph":)" << groups_[op] << "}";
    out << "}";
  }
  out << "\n]\n";
  LDDP_CHECK_MSG(out.good(), "short write to trace file " << path);
}

}  // namespace lddp::sim
