#include "sim/timeline_merge.h"

#include <algorithm>

#include "sim/kernel.h"

namespace lddp::sim {

std::size_t TimelineMerger::add(const Timeline& recorded, double release,
                                OpId release_dep, bool packable) {
  Job job;
  job.recorded = &recorded;
  job.release = release;
  job.release_dep = release_dep;
  job.packable = packable;
  job.shared_ids.assign(recorded.op_count(), kNoOp);
  job.resource_map.resize(recorded.resource_count());
  for (Timeline::ResourceId r = 0; r < recorded.resource_count(); ++r) {
    const Timeline::ResourceId shared_r =
        shared_->find_resource(recorded.resource_name(r));
    LDDP_CHECK_MSG(shared_r != Timeline::kNoResource,
                   "merge: shared timeline lacks resource "
                       << recorded.resource_name(r));
    job.resource_map[r] = shared_r;
  }
  remaining_ += recorded.op_count();
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

double TimelineMerger::feasible_start(const Job& job) const {
  const OpId op = static_cast<OpId>(job.next);
  double t = job.release;
  t = std::max(t, shared_->resource_free_at(
                      job.resource_map[job.recorded->op_resource(op)]));
  for (OpId d : job.recorded->op_deps(op)) {
    // Recorded order is causally consistent, so every dependency has
    // already been placed in the shared timeline.
    LDDP_CHECK_MSG(job.shared_ids[d] != kNoOp,
                   "merge: recorded op depends on a later op");
    t = std::max(t, shared_->end_time(job.shared_ids[d]));
  }
  return t;
}

void TimelineMerger::place(std::size_t rank, double duration) {
  Job& job = jobs_[rank];
  const OpId op = static_cast<OpId>(job.next);
  // Map the recorded dependencies into the shared timeline and append the
  // release gate; Timeline::record then reproduces exactly feasible_start
  // (or, for a pack rider, the end of the previous segment — the shared
  // resource serializes the pack's segments back to back).
  std::vector<OpId> deps;
  const auto rec_deps = job.recorded->op_deps(op);
  deps.reserve(rec_deps.size() + 1);
  for (OpId d : rec_deps) deps.push_back(job.shared_ids[d]);
  deps.push_back(job.release_dep);
  const OpId placed =
      shared_->record(job.resource_map[job.recorded->op_resource(op)],
                      duration, deps, job.recorded->op_label(op));
  job.shared_ids[op] = placed;
  if (job.next == 0) job.start = shared_->start_time(placed);
  if (shared_->end_time(placed) >= job.end) {
    job.end = shared_->end_time(placed);
    job.last_op = placed;
  }
  ++job.next;
  --remaining_;
  if (job.next == job.recorded->op_count()) finished_.push_back(rank);
}

std::size_t TimelineMerger::step() {
  // A pack can complete several jobs in one placement; surplus completions
  // drain one per call so the caller's one-completion-per-step loop holds.
  if (finished_head_ < finished_.size()) return finished_[finished_head_++];
  LDDP_CHECK_MSG(remaining_ > 0, "merge: step() with nothing to schedule");

  std::size_t pick = kNone;
  double pick_start = 0.0;
  for (std::size_t k = 0; k < jobs_.size(); ++k) {
    const Job& job = jobs_[k];
    if (job.next >= job.recorded->op_count()) continue;
    const double s = feasible_start(job);
    if (pick == kNone || s < pick_start) {
      pick = k;
      pick_start = s;
    }
  }
  LDDP_CHECK(pick != kNone);

  // Pack window: head ops of other packable jobs that are co-ready on the
  // same shared resource and carry an amortizable-submission annotation.
  // Gathered before the head is placed (placing it moves the resource's
  // free time), in admission-rank order for determinism.
  std::vector<std::size_t> riders;
  if (packing_ && jobs_[pick].packable) {
    const Job& head = jobs_[pick];
    const Timeline::ResourceId head_res =
        head.resource_map[head.recorded->op_resource(
            static_cast<OpId>(head.next))];
    for (std::size_t k = 0; k < jobs_.size(); ++k) {
      if (k == pick) continue;
      const Job& job = jobs_[k];
      if (!job.packable || job.next >= job.recorded->op_count()) continue;
      const OpId op = static_cast<OpId>(job.next);
      if (job.resource_map[job.recorded->op_resource(op)] != head_res)
        continue;
      if (job.recorded->op_pack_overhead(op) <= 0.0) continue;
      if (feasible_start(job) != pick_start) continue;
      riders.push_back(k);
    }
  }

  const Job& head = jobs_[pick];
  const OpId head_op = static_cast<OpId>(head.next);
  const double head_dur = head.recorded->op_duration(head_op);
  if (riders.empty()) {
    place(pick, head_dur);
    LDDP_DCHECK(shared_->start_time(jobs_[pick].shared_ids[head_op]) ==
                pick_start);
  } else {
    PackedKernel pack(pack_spec_);
    pack.add_segment(head_dur, head.recorded->op_pack_overhead(head_op));
    const GroupId group = shared_->begin_group();
    (void)group;
    place(pick, head_dur);
    LDDP_DCHECK(shared_->start_time(jobs_[pick].shared_ids[head_op]) ==
                pick_start);
    for (std::size_t k : riders) {
      const Job& rider = jobs_[k];
      const OpId op = static_cast<OpId>(rider.next);
      const double priced = pack.add_segment(
          rider.recorded->op_duration(op),
          rider.recorded->op_pack_overhead(op));
      place(k, priced);
    }
    shared_->end_group();
    ++pack_count_;
    packed_ops_ += riders.size();
    pack_saved_ += pack.saved_seconds();
  }

  if (finished_head_ < finished_.size()) return finished_[finished_head_++];
  return kNone;
}

}  // namespace lddp::sim
