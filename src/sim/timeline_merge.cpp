#include "sim/timeline_merge.h"

#include <algorithm>

namespace lddp::sim {

std::size_t TimelineMerger::add(const Timeline& recorded, double release,
                                OpId release_dep) {
  Job job;
  job.recorded = &recorded;
  job.release = release;
  job.release_dep = release_dep;
  job.shared_ids.assign(recorded.op_count(), kNoOp);
  job.resource_map.resize(recorded.resource_count());
  for (Timeline::ResourceId r = 0; r < recorded.resource_count(); ++r) {
    const Timeline::ResourceId shared_r =
        shared_->find_resource(recorded.resource_name(r));
    LDDP_CHECK_MSG(shared_r != Timeline::kNoResource,
                   "merge: shared timeline lacks resource "
                       << recorded.resource_name(r));
    job.resource_map[r] = shared_r;
  }
  remaining_ += recorded.op_count();
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

double TimelineMerger::feasible_start(const Job& job) const {
  const OpId op = static_cast<OpId>(job.next);
  double t = job.release;
  t = std::max(t, shared_->resource_free_at(
                      job.resource_map[job.recorded->op_resource(op)]));
  for (OpId d : job.recorded->op_deps(op)) {
    // Recorded order is causally consistent, so every dependency has
    // already been placed in the shared timeline.
    LDDP_CHECK_MSG(job.shared_ids[d] != kNoOp,
                   "merge: recorded op depends on a later op");
    t = std::max(t, shared_->end_time(job.shared_ids[d]));
  }
  return t;
}

std::size_t TimelineMerger::step() {
  LDDP_CHECK_MSG(remaining_ > 0, "merge: step() with nothing to schedule");
  std::size_t pick = kNone;
  double pick_start = 0.0;
  for (std::size_t k = 0; k < jobs_.size(); ++k) {
    const Job& job = jobs_[k];
    if (job.next >= job.recorded->op_count()) continue;
    const double s = feasible_start(job);
    if (pick == kNone || s < pick_start) {
      pick = k;
      pick_start = s;
    }
  }
  LDDP_CHECK(pick != kNone);

  Job& job = jobs_[pick];
  const OpId op = static_cast<OpId>(job.next);
  // Map the recorded dependencies into the shared timeline and append the
  // release gate; Timeline::record then reproduces exactly feasible_start.
  std::vector<OpId> deps;
  const auto rec_deps = job.recorded->op_deps(op);
  deps.reserve(rec_deps.size() + 1);
  for (OpId d : rec_deps) deps.push_back(job.shared_ids[d]);
  deps.push_back(job.release_dep);
  const OpId placed = shared_->record(
      job.resource_map[job.recorded->op_resource(op)],
      job.recorded->op_duration(op), deps, job.recorded->op_label(op));
  LDDP_DCHECK(shared_->start_time(placed) == pick_start);
  job.shared_ids[op] = placed;
  if (job.next == 0) job.start = shared_->start_time(placed);
  if (shared_->end_time(placed) >= job.end) {
    job.end = shared_->end_time(placed);
    job.last_op = placed;
  }
  ++job.next;
  --remaining_;
  return job.next == job.recorded->op_count() ? pick : kNone;
}

}  // namespace lddp::sim
