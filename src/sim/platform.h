// A heterogeneous platform: one simulated CPU agent + one simulated GPU
// sharing a single Timeline, so CPU fronts, GPU kernels and DMA copies all
// schedule against each other exactly as the paper's figures require.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "cpu/cost_model.h"
#include "cpu/thread_pool.h"
#include "sim/device.h"
#include "sim/device_spec.h"
#include "sim/timeline.h"

namespace lddp::sim {

class Platform {
 public:
  /// `pool` may be null: all real execution then runs on the calling
  /// thread (simulated times are unaffected — they come from the models).
  /// `buffers`, when given, backs the devices' alloc/alloc_pinned with
  /// reusable arenas shared across Platform instances.
  explicit Platform(PlatformSpec spec, cpu::ThreadPool* pool = nullptr,
                    BufferPool* buffers = nullptr)
      : spec_(std::move(spec)), pool_(pool) {
    cpu_res_ = timeline_.add_resource("cpu");
    gpus_.push_back(std::make_unique<Device>(spec_.gpu, timeline_, pool,
                                             "gpu", buffers));
  }

  /// Multi-accelerator platform: one CPU plus any number of devices — the
  /// configuration the paper's conclusion asks about.
  Platform(cpu::CpuSpec cpu, std::vector<GpuSpec> accels,
           cpu::ThreadPool* pool = nullptr, BufferPool* buffers = nullptr)
      : pool_(pool) {
    LDDP_CHECK_MSG(!accels.empty(), "need at least one accelerator");
    spec_.name = "multi-accelerator";
    spec_.cpu = std::move(cpu);
    spec_.gpu = accels.front();
    cpu_res_ = timeline_.add_resource("cpu");
    for (std::size_t k = 0; k < accels.size(); ++k)
      gpus_.push_back(std::make_unique<Device>(
          std::move(accels[k]), timeline_, pool,
          "gpu" + std::to_string(k), buffers));
  }

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  const PlatformSpec& spec() const { return spec_; }
  Timeline& timeline() { return timeline_; }
  Device& gpu() { return *gpus_.front(); }
  Device& gpu(std::size_t k) {
    LDDP_CHECK(k < gpus_.size());
    return *gpus_[k];
  }
  std::size_t num_gpus() const { return gpus_.size(); }
  cpu::ThreadPool* pool() { return pool_; }

  /// Pricing and dependency options for one CPU front.
  struct CpuFrontOpts {
    bool parallel = true;      ///< fork/join (or barrier) vs single thread
    bool streamed = false;     ///< persistent-thread barrier pricing
    double mem_amplification = 1.0;  ///< cache-hostile walk factor
    double extra_seconds = 0.0;      ///< e.g. mapped-pinned access surcharge
    OpId dep1 = kNoOp;
    OpId dep2 = kNoOp;
  };

  /// Executes `body` over [0, cells) on the host and records the modeled
  /// CPU duration. Returns the op id (an "event"). `body` is either
  /// per-cell — `body(i)` — or ranged — `body(lo, hi)` over contiguous
  /// sub-ranges (the batch-front kernels; ranges map 1:1 onto the pool's
  /// parallel_for chunks). Pricing is identical for both forms.
  template <typename Body>
  OpId cpu_front(std::size_t cells, const cpu::WorkProfile& work, Body&& body,
                 const CpuFrontOpts& opts = {}) {
    if (cells == 0) return kNoOp;
    if constexpr (std::is_invocable_v<Body&, std::size_t, std::size_t>) {
      if (pool_ && opts.parallel && cells >= kParallelExecThreshold) {
        pool_->parallel_for_chunked(0, cells,
                                    [&body](std::size_t lo, std::size_t hi) {
                                      body(lo, hi);
                                    },
                                    front_grain(work, opts));
      } else {
        body(0, cells);
      }
    } else if (pool_ && opts.parallel && cells >= kParallelExecThreshold) {
      pool_->parallel_for_chunked(0, cells,
                                  [&body](std::size_t lo, std::size_t hi) {
                                    for (std::size_t i = lo; i < hi; ++i)
                                      body(i);
                                  },
                                  front_grain(work, opts));
    } else {
      for (std::size_t i = 0; i < cells; ++i) body(i);
    }
    return timeline_.record(
        cpu_res_,
        cpu::cpu_front_seconds(spec_.cpu, work, cells, opts.parallel,
                               opts.mem_amplification, opts.streamed) +
            opts.extra_seconds,
        opts.dep1, opts.dep2, "cpu.front");
  }

  /// Executes `body(t)` for tile t in [0, num_tiles) — the tiled
  /// block-per-thread mapping — and records the tiled-front pricing.
  template <typename Body>
  OpId cpu_tiled_front(std::size_t num_tiles, std::size_t tile_cells,
                       const cpu::WorkProfile& work, Body&& body,
                       OpId dep = kNoOp) {
    if (num_tiles == 0) return kNoOp;
    if (pool_ && num_tiles > 1) {
      pool_->parallel_for(0, num_tiles,
                          [&body](std::size_t t) { body(t); });
    } else {
      for (std::size_t t = 0; t < num_tiles; ++t) body(t);
    }
    return timeline_.record(
        cpu_res_,
        cpu::cpu_tiled_front_seconds(spec_.cpu, work, num_tiles, tile_cells),
        dep, kNoOp, "cpu.tile-front");
  }

  /// Records the modeled duration of a CPU front *without* executing
  /// anything — for callers that already produced the data by other means
  /// (e.g. the serial reference scan charging one bulk op).
  OpId cpu_charge(std::size_t cells, const cpu::WorkProfile& work,
                  bool parallel, OpId dep1 = kNoOp, OpId dep2 = kNoOp) {
    if (cells == 0) return kNoOp;
    return timeline_.record(
        cpu_res_, cpu::cpu_front_seconds(spec_.cpu, work, cells, parallel),
        dep1, dep2, "cpu.bulk");
  }

  /// Records a zero-work CPU-side synchronization point that waits on the
  /// given dependencies (e.g. "CPU blocks until the GPU result arrives").
  OpId cpu_sync(OpId dep1, OpId dep2 = kNoOp) {
    return timeline_.record(cpu_res_, 0.0, dep1, dep2);
  }

  /// Simulated wall-clock of everything recorded so far.
  double elapsed() const { return timeline_.makespan(); }

  /// CPU / GPU-compute utilization over the makespan (diagnostics).
  double cpu_busy() const { return timeline_.busy_time(cpu_res_); }

 private:
  static constexpr std::size_t kParallelExecThreshold = 4096;
  /// Target real time of one stealing morsel. ~8 us is 2–3 orders above
  /// the deque push/steal cost yet short enough that a front splits into
  /// enough morsels to rebalance a ragged wavefront.
  static constexpr double kMorselTargetSeconds = 8e-6;

  /// Adaptive morsel size for the stealing substrate, from the calibrated
  /// per-cell cost model: the cell count this CPU retires in one morsel
  /// target interval under this work profile. Static pools ignore the
  /// hint, so computing it is only worth a branch on the stealing path.
  std::size_t front_grain(const cpu::WorkProfile& work,
                          const CpuFrontOpts& opts) const {
    if (pool_ == nullptr || pool_->stealing() == nullptr) return 0;
    // cpu_peak_throughput is full-occupancy; a morsel runs on ONE thread,
    // so size it from the per-core rate.
    const double rate = cpu::cpu_peak_throughput(spec_.cpu, work,
                                                 opts.mem_amplification) /
                        static_cast<double>(std::max(1, spec_.cpu.cores));
    return static_cast<std::size_t>(rate * kMorselTargetSeconds);
  }

  PlatformSpec spec_;
  cpu::ThreadPool* pool_;
  Timeline timeline_;
  Timeline::ResourceId cpu_res_{};
  std::vector<std::unique_ptr<Device>> gpus_;
};

}  // namespace lddp::sim
