// Discrete-event resource timeline — the clock of the simulated platform.
//
// Every simulated activity (CPU front, GPU kernel, H2D/D2H copy) is an
// *operation* bound to one *resource*. An operation starts when (a) its
// resource is free and (b) all of its dependencies have finished; it then
// occupies the resource for its duration. The makespan of the resulting
// schedule is the simulated wall-clock time of the whole algorithm —
// overlap between CPU compute, GPU compute and DMA falls out naturally,
// which is exactly what the paper's pipelined transfer scheme (Section
// IV-C) exploits.
//
// Operations must be recorded in a causally-consistent order (dependencies
// before dependents), which the eager host-side execution of the framework
// guarantees by construction.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "util/check.h"

namespace lddp::fault {
struct RequestControl;
}  // namespace lddp::fault

namespace lddp::sim {

using OpId = std::uint32_t;
inline constexpr OpId kNoOp = std::numeric_limits<OpId>::max();

/// Group tag for ops that belong to one batched submission (a fused launch
/// graph replay); kNoGroup marks ordinary stand-alone ops.
using GroupId = std::uint32_t;
inline constexpr GroupId kNoGroup = std::numeric_limits<GroupId>::max();

class Timeline {
 public:
  using ResourceId = std::uint32_t;

  /// Registers a resource (e.g. "cpu", "gpu.compute", "gpu.copy.h2d").
  ResourceId add_resource(std::string name);

  /// Records an operation of `duration_s` seconds on `resource`, starting
  /// no earlier than the completion of every op in `deps`. Returns its id.
  /// `label` must be a string with static storage duration (or null); it
  /// names the op in exported traces.
  OpId record(ResourceId resource, double duration_s,
              std::span<const OpId> deps = {}, const char* label = nullptr);

  /// Convenience overloads for 1/2 dependencies (hot path).
  OpId record(ResourceId resource, double duration_s, OpId dep,
              OpId dep2 = kNoOp, const char* label = nullptr);

  double start_time(OpId op) const;
  double end_time(OpId op) const;

  /// Completion time of the last operation recorded so far.
  double makespan() const { return makespan_; }

  /// Time the resource is next available.
  double resource_free_at(ResourceId r) const;

  /// Total occupied time on a resource — utilization numerator.
  double busy_time(ResourceId r) const;

  /// Opens a new op group: every op recorded until end_group() is tagged
  /// with the returned id (exported as "args":{"graph":N} in traces).
  /// Groups do not nest.
  GroupId begin_group();
  void end_group();
  GroupId op_group(OpId op) const;  ///< kNoGroup for ungrouped ops

  std::size_t op_count() const { return ends_.size(); }
  std::size_t resource_count() const { return resources_.size(); }
  const std::string& resource_name(ResourceId r) const;
  ResourceId op_resource(OpId op) const;
  const char* op_label(OpId op) const;  ///< never null (may be "")
  double op_duration(OpId op) const { return end_time(op) - start_time(op); }

  /// The operation's recorded dependencies (kNoOp entries filtered out).
  /// Retained so a recorded schedule can be *replayed* elsewhere — the
  /// batch engine re-times per-solve schedules against a shared platform
  /// timeline while preserving each solve's internal dependency structure.
  std::span<const OpId> op_deps(OpId op) const;

  /// Marks `seconds` of the op's recorded duration as *amortizable
  /// submission cost* — driver launch overhead, graph-node issue,
  /// pipeline-fill padding of a tiny kernel, or per-copy submission
  /// latency. The solo schedule is unchanged; a cross-solve packer
  /// (sim/timeline_merge.h) uses the annotation to re-price the op when it
  /// rides in another tenant's launch. Annotating twice accumulates.
  void annotate_pack(OpId op, double seconds);
  /// Amortizable submission seconds of the op (0 for ordinary ops).
  double op_pack_overhead(OpId op) const;

  /// Installs per-request lifecycle control: every subsequent record()
  /// checks the cancellation flag before recording (throws
  /// fault::CancelledError) and the simulated-time deadline after (throws
  /// fault::DeadlineExceededError once the makespan passes it). The
  /// timeline is the one chokepoint every CPU front, GPU kernel and DMA
  /// copy flows through, so this gives front/tile-boundary lifecycle
  /// checks with zero strategy-code changes. Null (the default) disables
  /// both checks; the control must outlive its installation. The pointer
  /// is intentionally NOT copied by the copy constructor/assignment — a
  /// recorded schedule handed to the batch merger must not retain a
  /// dangling per-attempt control.
  void set_request_control(const fault::RequestControl* control) {
    control_ = control;
  }
  const fault::RequestControl* request_control() const { return control_; }

  Timeline() = default;
  Timeline(const Timeline& o) { copy_from(o); }
  Timeline& operator=(const Timeline& o) {
    if (this != &o) copy_from(o);
    return *this;
  }
  Timeline(Timeline&&) = default;
  Timeline& operator=(Timeline&&) = default;

  /// Id of the resource with this exact name, or kNoResource.
  static constexpr ResourceId kNoResource =
      std::numeric_limits<ResourceId>::max();
  ResourceId find_resource(const std::string& name) const;

  /// Clears all operations but keeps registered resources.
  void reset();

  /// Writes the recorded schedule as a Chrome-tracing ("chrome://tracing" /
  /// Perfetto) JSON file: one lane per resource, one complete event per
  /// operation, timestamps in simulated microseconds.
  void export_chrome_trace(const std::string& path) const;

 private:
  struct Resource {
    std::string name;
    double free_at = 0.0;
    double busy = 0.0;
  };

  void copy_from(const Timeline& o);
  /// Lifecycle checks of record(); out-of-line so the throw paths stay off
  /// the hot recording sequence.
  void check_cancelled() const;
  void check_deadline() const;

  std::vector<Resource> resources_;
  std::vector<double> starts_;
  std::vector<double> ends_;
  std::vector<ResourceId> op_resources_;
  std::vector<const char*> labels_;
  std::vector<GroupId> groups_;
  // Flattened per-op dependency lists: op k's deps live at
  // dep_pool_[dep_offsets_[k] .. dep_offsets_[k + 1]).
  std::vector<OpId> dep_pool_;
  std::vector<std::uint32_t> dep_offsets_{0};
  std::vector<double> pack_overheads_;  // amortizable seconds per op
  GroupId current_group_ = kNoGroup;
  GroupId next_group_ = 0;
  double makespan_ = 0.0;
  const fault::RequestControl* control_ = nullptr;  // not copied
};

}  // namespace lddp::sim
